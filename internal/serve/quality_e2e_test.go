package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"deepod/internal/infer"
	"deepod/internal/metrics"
	"deepod/internal/obs"
	"deepod/internal/quality"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// e2eClock is the manual clock shared by the quality monitor so the test
// controls window rotation and pending TTL deterministically.
type e2eClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *e2eClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *e2eClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// echoSnapshot predicts the request's DepartSec (carried through the
// matched OD) so every estimate is deterministic and distinct.
func echoSnapshot(id string) *infer.Snapshot {
	return &infer.Snapshot{
		ID:       id,
		Estimate: func(_ context.Context, od *traj.MatchedOD) float64 { return od.DepartSec },
	}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b)))
	return rec
}

// TestQualityEndToEnd drives the full loop through the real engine and the
// real HTTP surface: N estimates are served and stamped, ground truth
// arrives for a subset — some immediately, some late, some after a hot
// reload, one orphaned, the rest left to expire — and /debug/quality must
// agree with the offline metrics package on exactly the joined pairs,
// count every path, and flag drift against the training-time reference.
func TestQualityEndToEnd(t *testing.T) {
	clk := &e2eClock{t: time.Unix(1_700_000_000, 0)}
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&logMu, &logBuf}, nil))

	// Training-time reference: absolute errors of a few seconds. The live
	// feedback below carries errors of hundreds of seconds, so the window's
	// distribution must register as drifted.
	ref := metrics.RefDistOf([]float64{2, 3, 4, 2, 3, 4, 2, 3, 4, 2, 3, 4}, nil)
	mon := quality.New(quality.Config{
		Window:          time.Hour, // the whole test stays inside one window
		PendingTTL:      10 * time.Minute,
		MinDriftSamples: 5,
		DriftThreshold:  0.2,
		Reference:       ref,
		ReferenceModel:  "m1",
		Cells:           unitCells{},
		Slotter:         timeslot.MustNew(5 * time.Minute),
		Registry:        reg,
		Logger:          logger,
		Now:             clk.now,
	})

	eng, err := infer.New(infer.Config{
		Match: func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			return traj.MatchedOD{DepartSec: od.DepartSec}, nil
		},
		Snapshot: echoSnapshot("m1"),
		Workers:  2,
		Recorder: mon,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	srv, err := New(Config{
		City:     "e2e-city",
		Infer:    eng.Do,
		Quality:  mon,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// Serve 10 estimates; predicted travel time = depart_sec.
	type served struct {
		id   string
		pred float64
	}
	var sv []served
	for i := 0; i < 10; i++ {
		depart := float64(600 + i*10)
		rec := postJSON(t, h, "/estimate", EstimateRequest{DepartSec: depart})
		if rec.Code != http.StatusOK {
			t.Fatalf("estimate %d = %d: %s", i, rec.Code, rec.Body)
		}
		var resp EstimateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.PredictionID == "" || resp.Model != "m1" || resp.TravelSeconds != depart {
			t.Fatalf("estimate %d = %+v", i, resp)
		}
		sv = append(sv, served{resp.PredictionID, resp.TravelSeconds})
	}

	var joinedPred, joinedActual []float64
	feedback := func(id string, actual float64, wantJoin bool, wantModel string) {
		t.Helper()
		rec := postJSON(t, h, "/feedback", FeedbackRequest{PredictionID: id, ActualSeconds: actual})
		if rec.Code != http.StatusOK {
			t.Fatalf("feedback %s = %d: %s", id, rec.Code, rec.Body)
		}
		var resp FeedbackResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Joined != wantJoin {
			t.Fatalf("feedback %s joined=%v, want %v (%s)", id, resp.Joined, wantJoin, rec.Body)
		}
		if wantJoin && resp.Model != wantModel {
			t.Fatalf("feedback %s model=%q, want %q", id, resp.Model, wantModel)
		}
	}

	// Immediate feedback for the first six, with ~400 s errors (drifted far
	// from the reference's few-second errors).
	for i := 0; i < 6; i++ {
		actual := sv[i].pred + 400 + float64(i)
		feedback(sv[i].id, actual, true, "m1")
		joinedPred, joinedActual = append(joinedPred, sv[i].pred), append(joinedActual, actual)
	}

	// Late feedback: five minutes pass (inside the 10 m TTL), trips 6 and 7
	// complete.
	clk.advance(5 * time.Minute)
	for i := 6; i < 8; i++ {
		actual := sv[i].pred + 350
		feedback(sv[i].id, actual, true, "m1")
		joinedPred, joinedActual = append(joinedPred, sv[i].pred), append(joinedActual, actual)
	}

	// Hot reload. Pre-swap predictions 8 and 9 stay pending under the m1
	// generation; the post-swap estimate is stamped m2.
	if _, err := eng.Swap(echoSnapshot("m2")); err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, h, "/estimate", EstimateRequest{DepartSec: 900})
	var postSwap EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &postSwap); err != nil {
		t.Fatal(err)
	}
	if postSwap.Model != "m2" || postSwap.PredictionID == "" {
		t.Fatalf("post-swap estimate = %+v", postSwap)
	}
	feedback(postSwap.PredictionID, 900+300, true, "m2")
	joinedPred, joinedActual = append(joinedPred, 900), append(joinedActual, 900+300)
	// Feedback across the reload still joins: prediction 8 was served by
	// m1 and must attribute there, not to the live model.
	feedback(sv[8].id, sv[8].pred+380, true, "m1")
	joinedPred, joinedActual = append(joinedPred, sv[8].pred), append(joinedActual, sv[8].pred+380)

	// An orphan: an ID the server never issued.
	feedback("never-issued", 123, false, "")

	// Expiry: the TTL passes, prediction 9 is evicted, its feedback orphans.
	clk.advance(11 * time.Minute)
	feedback(sv[9].id, 999, false, "")

	// Invalid feedback values are client errors.
	for _, bad := range []string{
		`{"prediction_id":"x","actual_seconds":-1}`,
		`{"actual_seconds":10}`,
		`not json`,
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/feedback", strings.NewReader(bad)))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("bad feedback %q = %d", bad, rec.Code)
		}
	}

	// Read the state back through the HTTP surface like an operator would.
	getRec := httptest.NewRecorder()
	h.ServeHTTP(getRec, httptest.NewRequest(http.MethodGet, "/debug/quality", nil))
	if getRec.Code != http.StatusOK {
		t.Fatalf("/debug/quality = %d", getRec.Code)
	}
	var st quality.State
	if err := json.Unmarshal(getRec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad /debug/quality JSON %q: %v", getRec.Body, err)
	}

	// The windowed aggregates equal the offline metrics on the joined pairs.
	if st.Current == nil || st.Current.Count != len(joinedPred) {
		t.Fatalf("current window = %+v, want %d joins", st.Current, len(joinedPred))
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"MAE", float64(st.Current.MAESeconds), metrics.MAE(joinedActual, joinedPred)},
		{"MAPE", float64(st.Current.MAPE), metrics.MAPE(joinedActual, joinedPred)},
		{"MARE", float64(st.Current.MARE), metrics.MARE(joinedActual, joinedPred)},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Fatalf("window %s = %v, offline %s = %v", c.name, c.got, c.name, c.want)
		}
	}

	// Counters: 11 predictions (10 + post-swap), 10 joins, 2 orphans, 1
	// expired, nothing capacity-evicted.
	if st.Counters.Predictions != 11 || st.Counters.Joined != 10 || st.Counters.Orphaned != 2 {
		t.Fatalf("counters = %+v", st.Counters)
	}
	if st.Pending.Expired != 1 || st.Pending.Evicted != 0 || st.Pending.Size != 0 {
		t.Fatalf("pending = %+v", st.Pending)
	}

	// Both generations appear, m1 with 9 joins and m2 with 1.
	if n := len(st.Current.Generations); n != 2 {
		t.Fatalf("generations = %+v", st.Current.Generations)
	}
	if g := st.Current.Generations[0]; g.Model != "m1" || g.Count != 9 {
		t.Fatalf("generation 1 = %+v", g)
	}
	if g := st.Current.Generations[1]; g.Model != "m2" || g.Count != 1 {
		t.Fatalf("generation 2 = %+v", g)
	}

	// Drift fired: the JSON says so, the gauge crossed the threshold, and
	// exactly one warning was logged for the window.
	if !st.Drift.Enabled || !st.Drift.Drifting || !(float64(st.Drift.PSI) > 0.2) {
		t.Fatalf("drift = %+v", st.Drift)
	}
	var gauge, alerts float64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "tte_quality_drift":
			gauge = s.Value
		case "tte_quality_drift_alerts_total":
			alerts = s.Value
		}
	}
	if !(gauge > 0.2) || alerts != 1 {
		t.Fatalf("drift gauge = %v, alerts = %v", gauge, alerts)
	}
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "quality drift") {
		t.Fatalf("no drift warning in logs: %q", logged)
	}
}

// lockedWriter serializes concurrent slog writes in the test.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestFeedbackUnwired answers 501 so operators can tell monitoring is off
// rather than silently dropping ground truth.
func TestFeedbackUnwired(t *testing.T) {
	s := newInferServer(t, func(context.Context, traj.ODInput) (infer.Result, error) {
		return infer.Result{Seconds: 1}, nil
	}, nil)
	rec := postJSON(t, s.Handler(), "/feedback", FeedbackRequest{PredictionID: "x", ActualSeconds: 1})
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("unwired /feedback = %d, want 501", rec.Code)
	}
	// And the debug endpoint is simply absent (404 from the mux).
	get := httptest.NewRecorder()
	s.Handler().ServeHTTP(get, httptest.NewRequest(http.MethodGet, "/debug/quality", nil))
	if get.Code != http.StatusNotFound {
		t.Fatalf("unwired /debug/quality = %d, want 404", get.Code)
	}
}

// TestFeedbackTripIDAlias: callers may echo the ID under trip_id instead.
func TestFeedbackTripIDAlias(t *testing.T) {
	clk := &e2eClock{t: time.Unix(1_700_000_000, 0)}
	reg := obs.NewRegistry()
	mon := quality.New(quality.Config{Registry: reg, Now: clk.now})
	eng, err := infer.New(infer.Config{
		Match: func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			return traj.MatchedOD{DepartSec: od.DepartSec}, nil
		},
		Snapshot: echoSnapshot("m1"),
		Recorder: mon,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := New(Config{City: "alias", Infer: eng.Do, Quality: mon, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, srv.Handler(), "/estimate", EstimateRequest{DepartSec: 300})
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"trip_id":%q,"actual_seconds":320}`, resp.PredictionID)
	fb := httptest.NewRecorder()
	srv.Handler().ServeHTTP(fb, httptest.NewRequest(http.MethodPost, "/feedback", strings.NewReader(body)))
	if fb.Code != http.StatusOK {
		t.Fatalf("trip_id feedback = %d: %s", fb.Code, fb.Body)
	}
	var fres FeedbackResponse
	if err := json.Unmarshal(fb.Body.Bytes(), &fres); err != nil {
		t.Fatal(err)
	}
	if !fres.Joined || fres.AbsErrorSeconds != 20 {
		t.Fatalf("alias feedback = %+v", fres)
	}
}
