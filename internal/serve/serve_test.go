package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepod/internal/obs"
	"deepod/internal/traj"
)

// newTestServer wires a Server against stubs: matching fails for origins
// with negative X, estimation always answers 42 seconds.
func newTestServer(t *testing.T) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := New(Config{
		City: "test-city",
		Match: func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			if od.Origin.X < 0 {
				return traj.MatchedOD{}, fmt.Errorf("no segment near origin")
			}
			return traj.MatchedOD{DepartSec: od.DepartSec}, nil
		},
		Estimate:     func(context.Context, *traj.MatchedOD) float64 { return 42 },
		Health:       map[string]any{"edges": 7},
		MaxBodyBytes: 1024,
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

func postEstimate(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/estimate", strings.NewReader(body))
	h.ServeHTTP(rec, req)
	return rec
}

func TestEstimateSuccessAndCounters(t *testing.T) {
	s, reg := newTestServer(t)
	rec := postEstimate(t, s.Handler(), `{"origin":{"X":1,"Y":2},"dest":{"X":3,"Y":4},"depart_sec":600}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TravelSeconds != 42 || resp.TravelHuman != "42s" {
		t.Fatalf("resp = %+v", resp)
	}
	if got := reg.Counter("tte_http_requests_total", "route", "/estimate", "code", "2xx").Value(); got != 1 {
		t.Fatalf("2xx counter = %d", got)
	}
	if got := reg.Histogram("tte_http_request_seconds", obs.DefBuckets, "route", "/estimate").Count(); got != 1 {
		t.Fatalf("latency observations = %d", got)
	}
	// Pipeline stage spans recorded once each.
	for _, stage := range []string{"decode", "match"} {
		if got := reg.Histogram(obs.SpanFamily, obs.DefBuckets, "span", stage).Count(); got != 1 {
			t.Fatalf("span %q count = %d", stage, got)
		}
	}
}

func TestEstimateErrorsAreJSON(t *testing.T) {
	s, reg := newTestServer(t)
	h := s.Handler()

	cases := []struct {
		name string
		do   func() *httptest.ResponseRecorder
		code int
	}{
		{"bad json", func() *httptest.ResponseRecorder {
			return postEstimate(t, h, `{"origin":`)
		}, http.StatusBadRequest},
		{"negative depart", func() *httptest.ResponseRecorder {
			return postEstimate(t, h, `{"origin":{"X":1,"Y":1},"dest":{"X":2,"Y":2},"depart_sec":-5}`)
		}, http.StatusBadRequest},
		{"match failure", func() *httptest.ResponseRecorder {
			return postEstimate(t, h, `{"origin":{"X":-1,"Y":1},"dest":{"X":2,"Y":2},"depart_sec":0}`)
		}, http.StatusUnprocessableEntity},
		{"body too large", func() *httptest.ResponseRecorder {
			return postEstimate(t, h, `{"pad":"`+strings.Repeat("x", 2048)+`"}`)
		}, http.StatusRequestEntityTooLarge},
		{"wrong method", func() *httptest.ResponseRecorder {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/estimate", nil))
			return rec
		}, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		rec := tc.do()
		if rec.Code != tc.code {
			t.Fatalf("%s: status = %d, want %d (body %s)", tc.name, rec.Code, tc.code, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: content type %q", tc.name, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error body %q not {\"error\": ...}: %v", tc.name, rec.Body, err)
		}
	}
	if got := reg.Counter("tte_http_requests_total", "route", "/estimate", "code", "4xx").Value(); got != 5 {
		t.Fatalf("4xx counter = %d, want 5", got)
	}
	if got := reg.Counter("tte_http_requests_total", "route", "/estimate", "code", "2xx").Value(); got != 0 {
		t.Fatalf("2xx counter = %d, want 0", got)
	}
}

func TestHealthz(t *testing.T) {
	s, reg := newTestServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["city"] != "test-city" || body["edges"] != float64(7) {
		t.Fatalf("health body = %v", body)
	}
	if got := reg.Counter("tte_http_requests_total", "route", "/healthz", "code", "2xx").Value(); got != 1 {
		t.Fatalf("healthz counter = %d", got)
	}
}

// TestMetricsEndpoint scrapes /metrics after a success and a failure and
// checks that the exposition reflects both and parses line-by-line.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	postEstimate(t, h, `{"origin":{"X":1,"Y":1},"dest":{"X":2,"Y":2},"depart_sec":0}`)
	postEstimate(t, h, `{"origin":{"X":-1,"Y":1},"dest":{"X":2,"Y":2},"depart_sec":0}`)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`tte_http_requests_total{code="2xx",route="/estimate"} 1`,
		`tte_http_requests_total{code="4xx",route="/estimate"} 1`,
		`tte_http_request_seconds_count{route="/estimate"} 2`,
		`tte_span_seconds_count{span="decode"} 2`,
		`tte_span_seconds_count{span="match"} 2`,
		`tte_http_in_flight 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") || strings.HasPrefix(line, " ") {
			t.Fatalf("malformed exposition line %d: %q", i, line)
		}
	}
}

func TestNewRequiresCallbacks(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty config")
	}
}

func TestHTTPServerTimeoutsAndShutdown(t *testing.T) {
	s, _ := newTestServer(t)
	srv := NewHTTPServer("127.0.0.1:0", s.Handler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 {
		t.Fatalf("missing timeouts: %+v", srv)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ListenAndServe(ctx, srv, time.Second, nil) }()
	time.Sleep(50 * time.Millisecond) // let it bind
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}
