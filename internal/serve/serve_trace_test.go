package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"deepod/internal/core"
	"deepod/internal/infer"
	"deepod/internal/mapmatch"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/traj"
)

// newTracedEngineServer assembles the real serving stack — HTTP layer,
// inference engine, map matcher, and an (untrained) DeepOD model — with
// tracing on, so tests can follow one request's spans across every layer.
func newTracedEngineServer(t *testing.T) (*Server, *obs.TraceStore, string) {
	t.Helper()
	gcfg := roadnet.SmallCity("trace-e2e", 7)
	gcfg.Rows, gcfg.Cols = 4, 4
	g, err := roadnet.GenerateCity(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SmallConfig()
	cfg.Ds, cfg.Dt = 8, 8
	cfg.D1m, cfg.D2m, cfg.D3m, cfg.D4m = 16, 8, 16, 8
	cfg.D5m, cfg.D6m, cfg.D7m, cfg.D9m = 16, 8, 16, 16
	cfg.Dh, cfg.Dtraf = 16, 8
	m, err := core.New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	matcher, err := mapmatch.New(g, mapmatch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cells, err := roadnet.NewEdgeIndex(g, 250)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng, err := infer.New(infer.Config{
		Match: func(ctx context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			oe, of, err := matcher.MatchPointCtx(ctx, od.Origin)
			if err != nil {
				return traj.MatchedOD{}, err
			}
			de, df, err := matcher.MatchPointCtx(ctx, od.Dest)
			if err != nil {
				return traj.MatchedOD{}, err
			}
			return traj.MatchedOD{
				OriginEdge: oe, DestEdge: de,
				RStart: of, REnd: 1 - df,
				DepartSec: od.DepartSec,
			}, nil
		},
		Snapshot:     infer.ModelSnapshot("m-e2e", m),
		Workers:      2,
		QueueDepth:   16,
		MaxBatch:     4,
		CacheEntries: 64,
		Cells:        cells,
		Slotter:      m.Slotter(),
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)

	ts := obs.NewTraceStore(reg, obs.TraceStoreConfig{SlowestN: -1, SampleRate: 1, Seed: 1})
	s, err := New(Config{
		City:     "trace-city",
		Infer:    eng.Do,
		Ready:    eng.Readiness,
		Registry: reg,
		Traces:   ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An on-network request body: both endpoints sit exactly on edges.
	o := g.PointAlongEdge(0, 0.3)
	d := g.PointAlongEdge(roadnet.EdgeID(g.NumEdges()-1), 0.7)
	body := fmt.Sprintf(`{"origin":{"X":%f,"Y":%f},"dest":{"X":%f,"Y":%f},"depart_sec":600}`,
		o.X, o.Y, d.X, d.Y)
	return s, ts, body
}

// spanAttrs flattens a span's attributes for assertions.
func spanAttrs(s obs.SpanRecord) map[string]any {
	out := map[string]any{}
	for _, a := range s.Attrs {
		out[a.Key] = a.Value
	}
	return out
}

// TestTracePropagationEndToEnd drives one request through the full stack
// and checks the retained trace is a single tree: the route's root span
// with decode and the engine stages (cache, queue, batch) as children, the
// match and model stages under the batch, and the core model's encode and
// estimate stages under the model span — the layering the trace layer
// exists to expose.
func TestTracePropagationEndToEnd(t *testing.T) {
	s, ts, body := newTracedEngineServer(t)
	h := s.Handler()

	rec := postEstimate(t, h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("estimate = %d, body %s", rec.Code, rec.Body)
	}
	id := rec.Header().Get(obs.TraceHeader)
	if id == "" {
		t.Fatal("response missing X-Trace-Id")
	}

	recs := ts.Traces(obs.TraceFilter{Route: "/estimate"})
	if len(recs) != 1 || recs[0].TraceID != id {
		t.Fatalf("retained = %+v, want one /estimate trace with ID %s", recs, id)
	}
	tr := recs[0]
	idx := map[string]int{}
	for i, sp := range tr.Spans {
		idx[sp.Name] = i
	}
	parentOf := func(name string) int {
		i, ok := idx[name]
		if !ok {
			t.Fatalf("trace has no %q span; spans: %+v", name, tr.Spans)
		}
		return tr.Spans[i].Parent
	}
	if parentOf("/estimate") != -1 {
		t.Fatalf("root parent = %d", parentOf("/estimate"))
	}
	for _, name := range []string{"decode", "infer.cache", "infer.queue", "infer.batch"} {
		if parentOf(name) != idx["/estimate"] {
			t.Fatalf("%s parent = %d, want root (%d); spans: %+v", name, parentOf(name), idx["/estimate"], tr.Spans)
		}
	}
	for _, name := range []string{"infer.match", "infer.model"} {
		if parentOf(name) != idx["infer.batch"] {
			t.Fatalf("%s parent = %d, want infer.batch (%d)", name, parentOf(name), idx["infer.batch"])
		}
	}
	if parentOf("mapmatch.point") != idx["infer.match"] {
		t.Fatalf("mapmatch.point parent = %d, want infer.match (%d)", parentOf("mapmatch.point"), idx["infer.match"])
	}
	for _, name := range []string{"encode", "estimate"} {
		if parentOf(name) != idx["infer.model"] {
			t.Fatalf("%s parent = %d, want infer.model (%d)", name, parentOf(name), idx["infer.model"])
		}
	}

	if a := spanAttrs(tr.Spans[idx["infer.cache"]]); a["hit"] != false {
		t.Fatalf("infer.cache attrs = %v, want hit=false", a)
	}
	ba := spanAttrs(tr.Spans[idx["infer.batch"]])
	if bs, ok := ba["batch_size"].(int); !ok || bs < 1 {
		t.Fatalf("infer.batch attrs = %v, want batch_size >= 1", ba)
	}
	if ba["snapshot"] != "m-e2e" {
		t.Fatalf("infer.batch attrs = %v, want snapshot m-e2e", ba)
	}
	qa := spanAttrs(tr.Spans[idx["infer.queue"]])
	if _, ok := qa["wait_ms"].(float64); !ok {
		t.Fatalf("infer.queue attrs = %v, want wait_ms", qa)
	}
	if a := spanAttrs(tr.Spans[idx["/estimate"]]); a["status"] != 200 {
		t.Fatalf("root attrs = %v, want status 200", a)
	}

	// The repeat of the same OD is a cache hit: its trace records hit=true
	// and never reaches the batch stage.
	rec = postEstimate(t, h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat = %d, body %s", rec.Code, rec.Body)
	}
	id2 := rec.Header().Get(obs.TraceHeader)
	if id2 == "" || id2 == id {
		t.Fatalf("repeat trace ID = %q (first %q)", id2, id)
	}
	recs = ts.Traces(obs.TraceFilter{Route: "/estimate"})
	if len(recs) != 2 || recs[0].TraceID != id2 {
		t.Fatalf("retained after repeat = %d traces, newest %s", len(recs), recs[0].TraceID)
	}
	hit := recs[0]
	names := map[string]bool{}
	for _, sp := range hit.Spans {
		names[sp.Name] = true
		if sp.Name == "infer.cache" {
			if a := spanAttrs(sp); a["hit"] != true {
				t.Fatalf("repeat infer.cache attrs = %v, want hit=true", a)
			}
		}
	}
	if names["infer.batch"] || names["infer.queue"] {
		t.Fatalf("cache-hit trace has engine queue/batch spans: %+v", hit.Spans)
	}
}

// TestTraceTailSamplingUnderLoad floods the server with mixed fast, slow
// and failing requests and checks the retention contract: every error
// trace and every deliberately slow trace is retained and visible through
// GET /debug/traces, every response carries X-Trace-Id, and the minDur
// filter isolates the slow set.
func TestTraceTailSamplingUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	ts := obs.NewTraceStore(reg, obs.TraceStoreConfig{
		Capacity:   256,
		SlowestN:   8,
		Window:     time.Hour, // no rotation mid-test
		SampleRate: 0,         // only error/slow retention, deterministically
	})
	// The stub engine keys behavior off depart_sec: <1000 fast success,
	// <2000 slow success, else failure (→ 500).
	s := newInferServer(t, func(_ context.Context, od traj.ODInput) (infer.Result, error) {
		switch {
		case od.DepartSec < 1000:
			return infer.Result{Seconds: 1}, nil
		case od.DepartSec < 2000:
			time.Sleep(15 * time.Millisecond)
			return infer.Result{Seconds: 2}, nil
		default:
			return infer.Result{}, errors.New("model exploded")
		}
	}, func(c *Config) {
		c.Registry = reg
		c.Traces = ts
	})
	h := s.Handler()

	do := func(depart int) (string, int) {
		rec := postEstimate(t, h, fmt.Sprintf(`{"origin":{"X":1,"Y":1},"dest":{"X":2,"Y":2},"depart_sec":%d}`, depart))
		return rec.Header().Get(obs.TraceHeader), rec.Code
	}
	slowIDs := map[string]bool{}
	errIDs := map[string]bool{}
	total := 0
	for i := 0; i < 40; i++ { // fast traffic first fills the slow window
		id, code := do(i)
		if id == "" {
			t.Fatalf("fast request %d missing X-Trace-Id", i)
		}
		if code != http.StatusOK {
			t.Fatalf("fast request %d = %d", i, code)
		}
		total++
	}
	for i := 0; i < 5; i++ {
		id, code := do(1000 + i)
		if id == "" || code != http.StatusOK {
			t.Fatalf("slow request %d: id=%q code=%d", i, id, code)
		}
		slowIDs[id] = true
		total++
	}
	for i := 0; i < 5; i++ {
		id, code := do(2000 + i)
		if id == "" {
			t.Fatalf("error request %d missing X-Trace-Id", i)
		}
		if code != http.StatusInternalServerError {
			t.Fatalf("error request %d = %d", i, code)
		}
		errIDs[id] = true
		total++
	}

	get := func(url string) (int, struct {
		Count     int                `json:"count"`
		Completed uint64             `json:"completed"`
		Traces    []*obs.TraceRecord `json:"traces"`
	}) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		var body struct {
			Count     int                `json:"count"`
			Completed uint64             `json:"completed"`
			Traces    []*obs.TraceRecord `json:"traces"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: %v (body %s)", url, err, rec.Body)
		}
		return rec.Code, body
	}

	// 100% of error traces are retained.
	code, body := get("/debug/traces?errors=1")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", code)
	}
	if body.Count != len(errIDs) {
		t.Fatalf("error traces retained = %d, want %d", body.Count, len(errIDs))
	}
	for _, tr := range body.Traces {
		if !errIDs[tr.TraceID] || tr.Retained != "error" || !tr.Error {
			t.Fatalf("unexpected error trace %+v", tr)
		}
	}
	if body.Completed != uint64(total) {
		t.Fatalf("completed = %d, want %d", body.Completed, total)
	}

	// Every deliberately slow trace is retained; minDur isolates them from
	// the sub-millisecond warmup retentions.
	_, body = get("/debug/traces?minDur=10ms")
	if body.Count != len(slowIDs) {
		t.Fatalf("minDur=10ms returned %d traces, want %d slow", body.Count, len(slowIDs))
	}
	for _, tr := range body.Traces {
		if !slowIDs[tr.TraceID] || tr.Retained != "slow" {
			t.Fatalf("unexpected slow trace %+v", tr)
		}
		if tr.DurationMS < 10 {
			t.Fatalf("slow trace duration = %vms", tr.DurationMS)
		}
	}

	// Route + limit compose with the rest of the query.
	_, body = get("/debug/traces?route=/estimate&limit=3")
	if body.Count != 3 {
		t.Fatalf("limit=3 returned %d", body.Count)
	}
}

func TestReadyzDirectPathAlwaysReady(t *testing.T) {
	s, _ := newTestServer(t) // no Ready callback
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["ready"] != true || body["city"] != "test-city" {
		t.Fatalf("readyz body = %v", body)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/readyz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /readyz = %d", rec.Code)
	}
}

func TestReadyzReportsNotReady(t *testing.T) {
	s := newInferServer(t, func(context.Context, traj.ODInput) (infer.Result, error) {
		return infer.Result{}, nil
	}, func(c *Config) {
		c.Ready = func() (bool, map[string]any) {
			return false, map[string]any{"reason": "no model snapshot loaded", "queue_len": 0}
		}
	})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d, want 503", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["ready"] != false || body["reason"] != "no model snapshot loaded" {
		t.Fatalf("readyz body = %v", body)
	}
}

// TestReadyzEngineLifecycle walks the engine-backed readiness through its
// states: serving → failed reload (503) → recovered by Swap (200).
func TestReadyzEngineLifecycle(t *testing.T) {
	eng, err := infer.New(infer.Config{
		Match: func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			return traj.MatchedOD{DepartSec: od.DepartSec}, nil
		},
		Snapshot: &infer.Snapshot{ID: "m1", Estimate: func(context.Context, *traj.MatchedOD) float64 { return 60 }},
		Workers:  1, QueueDepth: 4,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s := newInferServer(t, eng.Do, func(c *Config) { c.Ready = eng.Readiness })
	h := s.Handler()

	check := func(wantCode int) map[string]any {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		if rec.Code != wantCode {
			t.Fatalf("/readyz = %d, want %d (body %s)", rec.Code, wantCode, rec.Body)
		}
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	body := check(http.StatusOK)
	if body["model"] != "m1" || body["queue_capacity"] != float64(4) {
		t.Fatalf("ready body = %v", body)
	}

	eng.RecordReloadFailure(errors.New("checkpoint is corrupt"))
	body = check(http.StatusServiceUnavailable)
	if body["reason"] != "last reload failed" || body["last_reload_error"] != "checkpoint is corrupt" {
		t.Fatalf("failed-reload body = %v", body)
	}

	if _, err := eng.Swap(&infer.Snapshot{ID: "m2", Estimate: func(context.Context, *traj.MatchedOD) float64 { return 120 }}); err != nil {
		t.Fatal(err)
	}
	body = check(http.StatusOK)
	if body["model"] != "m2" {
		t.Fatalf("recovered body = %v", body)
	}
}
