package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepod/internal/infer"
	"deepod/internal/metrics"
	"deepod/internal/obs"
	"deepod/internal/prof"
	"deepod/internal/quality"
	"deepod/internal/slo"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// TestSLOEndToEnd is the acceptance path for the alerting layer, driven
// through a real engine and the real HTTP surface on a manual clock: a
// synthetic error spike fires the fast-burn alert within one evaluation
// tick, the firing alert triggers a profile capture, quality drift routes
// through the same manager, and after recovery the alert resolves — with
// /debug/slo, /debug/alerts and /debug/profiles agreeing at every step.
func TestSLOEndToEnd(t *testing.T) {
	clk := &e2eClock{t: time.Unix(1_700_000_000, 0)}
	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&logMu, &logBuf}, nil))

	mgr := slo.NewManager(slo.ManagerConfig{Registry: reg, Logger: logger, Now: clk.now})

	profiler, err := prof.New(prof.Config{
		Dir:         t.TempDir(),
		CPUDuration: 5 * time.Millisecond,
		Cooldown:    time.Nanosecond,
		Registry:    reg,
		Now:         clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer profiler.Close()
	// The anomaly trigger: firing alerts capture a profile bundle tagged
	// with the alert name, exactly as tteserve wires it.
	mgr.Subscribe(func(ev slo.Event) {
		if ev.State == slo.StateFiring {
			profiler.TriggerAsync("alert:"+ev.Name, ev.Labels)
		}
	})

	// Quality monitoring routed through the same manager: live errors far
	// from the training-time reference must surface as quality:drift.
	ref := metrics.RefDistOf([]float64{2, 3, 4, 2, 3, 4, 2, 3, 4, 2, 3, 4}, nil)
	mon := quality.New(quality.Config{
		Window:          time.Hour,
		PendingTTL:      10 * time.Minute,
		MinDriftSamples: 5,
		DriftThreshold:  0.2,
		Reference:       ref,
		ReferenceModel:  "m1",
		Cells:           unitCells{},
		Slotter:         timeslot.MustNew(5 * time.Minute),
		Registry:        reg,
		Logger:          logger,
		Alerts:          mgr,
		Now:             clk.now,
	})

	eng, err := infer.New(infer.Config{
		Match: func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			return traj.MatchedOD{DepartSec: od.DepartSec}, nil
		},
		Snapshot: echoSnapshot("m1"),
		Workers:  2,
		Recorder: mon,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// The spike switch: while set, /estimate fails with a generic backend
	// error, which the server maps to 500 — the availability SLI's "bad".
	var spike atomic.Bool
	inferFn := func(ctx context.Context, od traj.ODInput) (infer.Result, error) {
		if spike.Load() {
			return infer.Result{}, errors.New("injected backend failure")
		}
		return eng.Do(ctx, od)
	}

	ev, err := slo.New(slo.Config{
		Objectives: []slo.Objective{{
			Name:   "availability",
			Target: 0.99,
			Ratio: &slo.RatioSLI{
				Bad:   slo.Selector{Metric: "tte_http_requests_total", Match: map[string]string{"route": "/estimate", "code": "5xx"}},
				Total: slo.Selector{Metric: "tte_http_requests_total", Match: map[string]string{"route": "/estimate"}},
			},
		}},
		Rules: []slo.BurnRule{
			{Name: "fast", Severity: "page", Long: time.Minute, Short: 10 * time.Second, Burn: 14.4},
		},
		Interval: 10 * time.Second, // ticked manually for determinism
		Source:   reg,
		Manager:  mgr,
		Now:      clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{
		City:     "slo-city",
		Infer:    inferFn,
		Quality:  mon,
		Registry: reg,
		SLO:      ev,
		Alerts:   mgr,
		Profiles: profiler,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	estimate := func(depart float64) *httptest.ResponseRecorder {
		return postJSON(t, h, "/estimate", EstimateRequest{DepartSec: depart})
	}

	// Healthy baseline: all 200s, the first tick records the anchor point
	// and nothing fires.
	for i := 0; i < 20; i++ {
		if rec := estimate(float64(600 + i)); rec.Code != http.StatusOK {
			t.Fatalf("healthy estimate = %d: %s", rec.Code, rec.Body)
		}
	}
	ev.Tick()
	if n := len(mgr.Active()); n != 0 {
		t.Fatalf("healthy: %d alerts firing", n)
	}

	// Spike: every request 500s. One evaluation tick must catch it — the
	// short window sees 100% bad (burn 100x >> 14.4), the long window
	// anchors on the same baseline point.
	clk.advance(15 * time.Second)
	spike.Store(true)
	for i := 0; i < 20; i++ {
		if rec := estimate(700); rec.Code != http.StatusInternalServerError {
			t.Fatalf("spike estimate = %d, want 500", rec.Code)
		}
	}
	ev.Tick()
	active := mgr.Active()
	if len(active) != 1 || active[0].Name != "slo:availability:fast" {
		t.Fatalf("spike: active = %+v, want slo:availability:fast", active)
	}
	if active[0].Severity != "page" || active[0].Value < 14.4 {
		t.Fatalf("spike alert = %+v", active[0])
	}

	// The firing edge triggered an async capture; wait for it to land.
	deadline := time.Now().Add(5 * time.Second)
	for len(profiler.List()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alert fired but no profile was captured")
		}
		time.Sleep(5 * time.Millisecond)
	}
	caps := profiler.List()
	if caps[0].Trigger != "alert:slo:availability:fast" {
		t.Fatalf("capture trigger = %q", caps[0].Trigger)
	}
	for _, kind := range prof.Kinds {
		if caps[0].Sizes[kind] == 0 {
			t.Fatalf("capture missing %s profile: %+v", kind, caps[0])
		}
	}

	// Operator surfaces during the incident.
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, rec.Code, rec.Body)
		}
		return rec
	}
	var status slo.Status
	if err := json.Unmarshal(get("/debug/slo").Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if len(status.Objectives) != 1 || !status.Objectives[0].Rules[0].Firing {
		t.Fatalf("/debug/slo during spike = %+v", status)
	}
	var alerts struct {
		Firing []slo.ActiveAlert `json:"firing"`
	}
	if err := json.Unmarshal(get("/debug/alerts").Body.Bytes(), &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts.Firing) != 1 {
		t.Fatalf("/debug/alerts firing = %+v", alerts.Firing)
	}
	var profiles struct {
		Captures []prof.Capture `json:"captures"`
	}
	if err := json.Unmarshal(get("/debug/profiles").Body.Bytes(), &profiles); err != nil {
		t.Fatal(err)
	}
	if len(profiles.Captures) != 1 {
		t.Fatalf("/debug/profiles = %+v", profiles)
	}
	dl := get("/debug/profiles/" + profiles.Captures[0].ID + "/heap")
	if dl.Body.Len() == 0 {
		t.Fatal("heap profile download empty")
	}
	// The page was logged at error level.
	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logged, "alert firing") || !strings.Contains(logged, "slo:availability:fast") {
		t.Fatalf("no firing notification in logs: %q", logged)
	}

	// Drift rides the same manager: serve predictions, join ground truth
	// with ~400 s errors, and quality:drift joins the firing set.
	var ids []string
	spike.Store(false)
	for i := 0; i < 6; i++ {
		rec := estimate(float64(800 + i))
		var resp EstimateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.PredictionID)
	}
	for i, id := range ids {
		rec := postJSON(t, h, "/feedback", FeedbackRequest{PredictionID: id, ActualSeconds: float64(800+i) + 400})
		if rec.Code != http.StatusOK {
			t.Fatalf("feedback = %d: %s", rec.Code, rec.Body)
		}
	}
	names := func(as []slo.ActiveAlert) []string {
		var out []string
		for _, a := range as {
			out = append(out, a.Name)
		}
		return out
	}
	if got := names(mgr.Active()); len(got) != 2 || got[0] != "quality:drift" {
		t.Fatalf("after drift: active = %v, want [quality:drift slo:availability:fast]", got)
	}

	// Recovery: the spike is off and the short window goes clean, so the
	// multi-window rule resolves on the next tick even though the long
	// window still remembers the bad minute.
	clk.advance(12 * time.Second)
	for i := 0; i < 100; i++ {
		if rec := estimate(900); rec.Code != http.StatusOK {
			t.Fatalf("recovery estimate = %d", rec.Code)
		}
	}
	ev.Tick()
	if got := names(mgr.Active()); len(got) != 1 || got[0] != "quality:drift" {
		t.Fatalf("after recovery: active = %v, want only quality:drift", got)
	}
	hist := mgr.History()
	var sawResolve bool
	for _, e := range hist {
		if e.Name == "slo:availability:fast" && e.State == slo.StateResolved {
			sawResolve = true
		}
	}
	if !sawResolve {
		t.Fatalf("no resolved transition in history: %+v", hist)
	}

	// The SLO metric families made it to the registry.
	want := map[string]bool{
		"tte_slo_sli":                    false,
		"tte_slo_burn_rate":              false,
		"tte_slo_evaluations_total":      false,
		"tte_alerts_firing":              false,
		"tte_alert_transitions_total":    false,
		"tte_prof_captures_total":        false,
		"tte_slo_error_budget_remaining": false,
	}
	for _, s := range reg.Snapshot() {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric family %s missing from the registry", name)
		}
	}
}
