package serve

import (
	"encoding/json"
	"net/http"

	"deepod/internal/obs"
	"deepod/internal/quality"
	"deepod/internal/recorder"
	"deepod/internal/slo"
	"deepod/internal/telemetry"
)

// sparkSeries are the history lines the dashboard charts when the sampler
// is wired. Families that don't exist in this process simply return no
// series.
var sparkSeries = []struct {
	Series string
	Agg    string
	Title  string
}{
	{"tte_http_requests_total", "rate", "request rate (/s)"},
	{"tte_http_request_seconds:p99", "value", "p99 latency (s)"},
	{"tte_infer_queue_depth", "value", "infer queue depth"},
	{"tte_slo_burn_rate", "value", "SLO burn rate"},
}

// sparkPoints bounds the points embedded per sparkline.
const sparkPoints = 120

// DashboardSpark is one rendered sparkline: a history series plus its
// chart title.
type DashboardSpark struct {
	Title  string                  `json:"title"`
	Series []telemetry.QuerySeries `json:"series"`
}

// DashboardAlerts is the alert slice of the dashboard payload.
type DashboardAlerts struct {
	Firing  []slo.ActiveAlert `json:"firing"`
	History []slo.Event       `json:"history"`
}

// Dashboard is the GET /debug/dashboard?format=json payload: every
// operational surface the process exposes, aggregated into one read.
// Slices not wired on this server are null.
type Dashboard struct {
	City    string         `json:"city"`
	Ready   bool           `json:"ready"`
	Detail  map[string]any `json:"ready_detail,omitempty"`
	Version map[string]any `json:"version,omitempty"`

	SLO      *slo.Status            `json:"slo,omitempty"`
	Alerts   *DashboardAlerts       `json:"alerts,omitempty"`
	Quality  *quality.State         `json:"quality,omitempty"`
	Traffic  map[string]any         `json:"traffic,omitempty"`
	Recorder *recorder.Stats        `json:"recorder,omitempty"`
	History  *telemetry.Stats       `json:"history,omitempty"`
	Export   *telemetry.ExportStats `json:"export,omitempty"`
	Sparks   []DashboardSpark       `json:"sparks,omitempty"`
}

// dashboard aggregates the live state of every wired surface.
func (s *Server) dashboard() Dashboard {
	d := Dashboard{City: s.cfg.City, Ready: true}
	if s.cfg.Ready != nil {
		d.Ready, d.Detail = s.cfg.Ready()
	}
	if s.cfg.Version != nil {
		d.Version = s.cfg.Version()
	}
	for k, v := range obs.BuildFields() {
		if d.Version == nil {
			d.Version = map[string]any{}
		}
		if _, ok := d.Version[k]; !ok {
			d.Version[k] = v
		}
	}
	if s.cfg.SLO != nil {
		st := s.cfg.SLO.Status()
		d.SLO = &st
	}
	if s.cfg.Alerts != nil {
		d.Alerts = &DashboardAlerts{Firing: s.cfg.Alerts.Active(), History: s.cfg.Alerts.History()}
	}
	if s.cfg.Quality != nil {
		st := s.cfg.Quality.State()
		d.Quality = &st
	}
	if s.cfg.TrafficStatus != nil {
		d.Traffic = s.cfg.TrafficStatus()
	}
	if s.cfg.Recorder != nil {
		st := s.cfg.Recorder.Stats()
		d.Recorder = &st
	}
	if s.cfg.History != nil {
		st := s.cfg.History.HistoryStats()
		d.History = &st
		for _, sp := range sparkSeries {
			res := s.cfg.History.Query(sp.Series, 0, 0, sp.Agg)
			if len(res.Series) == 0 {
				continue
			}
			for i := range res.Series {
				if n := len(res.Series[i].Points); n > sparkPoints {
					res.Series[i].Points = res.Series[i].Points[n-sparkPoints:]
				}
				res.Series[i].Exemplars = nil // charts don't need them
			}
			d.Sparks = append(d.Sparks, DashboardSpark{Title: sp.Title, Series: res.Series})
		}
	}
	if s.cfg.Exporter != nil {
		st := s.cfg.Exporter.Stats()
		d.Export = &st
	}
	return d
}

// handleDashboard serves GET /debug/dashboard: the unified ops view.
// ?format=json returns the aggregate as JSON (the machine-readable mode CI
// and fleet tooling consume); the default is a self-contained HTML page
// with the same data embedded, so a saved snapshot renders offline.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	d := s.dashboard()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, d)
		return
	}
	data, err := json.Marshal(d)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if r.Method == http.MethodHead {
		return
	}
	// json.Marshal escapes "<" to \u003c by default, so a closing
	// script tag cannot appear inside the inlined JSON and the literal
	// embeds safely.
	_, _ = w.Write([]byte(dashboardHTMLHead))
	_, _ = w.Write(data)
	_, _ = w.Write([]byte(dashboardHTMLTail))
}

const dashboardHTMLHead = `<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>tteserve ops dashboard</title>
<style>
 body{font:13px/1.5 system-ui,sans-serif;margin:1.5em;background:#111;color:#ddd;max-width:1100px}
 h1{font-size:1.3em} h2{font-size:1em;margin:1.2em 0 .3em;color:#8cf}
 table{border-collapse:collapse;margin:.3em 0}
 td,th{border:1px solid #333;padding:.2em .6em;text-align:left}
 th{background:#1c1c1c} .ok{color:#6d6} .bad{color:#f66}
 .spark{display:inline-block;margin:.4em 1em .4em 0;vertical-align:top}
 .spark svg{background:#181818;border:1px solid #333}
 .muted{color:#888} code{color:#fc6}
</style></head><body>
<h1>tteserve ops dashboard</h1>
<div id="root" class="muted">no data</div>
<script>const DATA = `

const dashboardHTMLTail = `;
const root = document.getElementById('root');
const esc = s => String(s).replace(/[&<>]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;'}[c]));
const fmt = v => typeof v === 'number' ? (Number.isInteger(v) ? v : v.toPrecision(4)) : v;
function table(rows) {
  if (!rows.length) return '<div class="muted">none</div>';
  const cols = Object.keys(rows[0]);
  let h = '<table><tr>' + cols.map(c => '<th>'+esc(c)+'</th>').join('') + '</tr>';
  for (const r of rows) h += '<tr>' + cols.map(c => '<td>'+esc(fmt(r[c] ?? ''))+'</td>').join('') + '</tr>';
  return h + '</table>';
}
function kv(obj) {
  return table(Object.entries(obj || {}).map(([k, v]) => ({key: k, value: typeof v === 'object' ? JSON.stringify(v) : v})));
}
function spark(sp) {
  const W = 240, H = 60, P = 4;
  let out = '<div class="spark"><div>'+esc(sp.title)+'</div>';
  for (const s of sp.series.slice(0, 4)) {
    const pts = s.points || [];
    if (pts.length < 2) continue;
    const vs = pts.map(p => p.v), ts = pts.map(p => p.t);
    const vmin = Math.min(...vs), vmax = Math.max(...vs), vr = (vmax - vmin) || 1;
    const tmin = ts[0], tr = (ts[ts.length-1] - tmin) || 1;
    const path = pts.map((p, i) => (i ? 'L' : 'M') +
      (P + (p.t - tmin) / tr * (W - 2*P)).toFixed(1) + ',' +
      (H - P - (p.v - vmin) / vr * (H - 2*P)).toFixed(1)).join('');
    out += '<svg width="'+W+'" height="'+H+'"><path d="'+path+'" fill="none" stroke="#8cf"/></svg>' +
      '<div class="muted">'+esc(s.id)+' <span>last '+esc(fmt(vs[vs.length-1]))+'</span></div>';
  }
  return out + '</div>';
}
function render(d) {
  let h = '<p>city <code>'+esc(d.city||'?')+'</code> — ' +
    (d.ready ? '<span class="ok">ready</span>' : '<span class="bad">NOT READY</span>') + '</p>';
  if (d.sparks && d.sparks.length) { h += '<h2>history</h2>' + d.sparks.map(spark).join(''); }
  if (d.slo) {
    h += '<h2>slo</h2>' + table(d.slo.objectives.map(o => ({
      objective: o.name, target: o.target, sli: o.sli, budget_remaining: o.error_budget_remaining,
      firing: o.rules.filter(r => r.firing).map(r => r.rule).join(', ') || '-'})));
  }
  if (d.alerts) {
    h += '<h2>alerts firing</h2>' + table((d.alerts.firing||[]).map(a => ({
      alert: a.name, severity: a.severity, since: a.since, value: a.value})));
  }
  if (d.quality) { h += '<h2>quality</h2>' + kv(d.quality.current || d.quality); }
  if (d.traffic) { h += '<h2>traffic</h2>' + kv(d.traffic); }
  if (d.recorder) { h += '<h2>flight recorder</h2>' + kv(d.recorder); }
  if (d.history) { h += '<h2>telemetry history</h2>' + kv(d.history); }
  if (d.export) { h += '<h2>telemetry export</h2>' + kv(d.export); }
  if (d.version) { h += '<h2>version</h2>' + kv(d.version); }
  root.innerHTML = h;
}
render(DATA);
// Live mode: when served (not a saved snapshot), refresh every 10s.
if (location.protocol.startsWith('http')) {
  setInterval(() => fetch(location.pathname + '?format=json')
    .then(r => r.json()).then(render).catch(() => {}), 10000);
}
</script></body></html>
`
