package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/traffic"
	"deepod/internal/traj"
)

// sinkStub records ingested batches and answers a scripted accepted/shed
// split.
type sinkStub struct {
	mu       sync.Mutex
	batches  [][]traffic.Probe
	accepted int
	shed     int
	// shedAll, when set, sheds every probe regardless of accepted/shed.
	shedAll bool
}

func (s *sinkStub) Ingest(batch []traffic.Probe) (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]traffic.Probe, len(batch))
	copy(cp, batch)
	s.batches = append(s.batches, cp)
	if s.shedAll {
		return 0, len(batch)
	}
	if s.accepted+s.shed == 0 {
		return len(batch), 0
	}
	return s.accepted, s.shed
}

func newProbeServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		City: "probe-city",
		Infer: func(context.Context, traj.ODInput) (infer.Result, error) {
			return infer.Result{Seconds: 1}, nil
		},
		Registry: obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postProbes(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/probes", strings.NewReader(body)))
	return rec
}

func TestProbesNDJSONHappyPath(t *testing.T) {
	sink := &sinkStub{}
	s := newProbeServer(t, func(c *Config) { c.Probes = sink })
	body := `{"vehicle":"veh-1","x":10,"y":20,"t":100}
{"vehicle":"veh-2","x":30,"y":40,"t":101}
{"vehicle":"veh-1","x":12,"y":20,"t":105}
`
	rec := postProbes(t, s.Handler(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp ProbesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 3 || resp.Shed != 0 {
		t.Fatalf("resp = %+v, want 3 accepted", resp)
	}
	if len(sink.batches) != 1 || len(sink.batches[0]) != 3 {
		t.Fatalf("sink saw %d batches", len(sink.batches))
	}
	p := sink.batches[0][2]
	if p.Vehicle != "veh-1" || p.X != 12 || p.T != 105 {
		t.Fatalf("probe decoded wrong: %+v", p)
	}
}

func TestProbesBadLineRejectsWholeBatch(t *testing.T) {
	sink := &sinkStub{}
	s := newProbeServer(t, func(c *Config) { c.Probes = sink })
	body := `{"vehicle":"veh-1","x":10,"y":20,"t":100}
not json at all
{"vehicle":"veh-2","x":30,"y":40,"t":101}
`
	rec := postProbes(t, s.Handler(), body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "line 2") {
		t.Fatalf("error does not point at the bad line: %s", rec.Body)
	}
	if len(sink.batches) != 0 {
		t.Fatal("a malformed body must not be partially ingested")
	}
}

func TestProbesEmptyBodyRejected(t *testing.T) {
	s := newProbeServer(t, func(c *Config) { c.Probes = &sinkStub{} })
	if rec := postProbes(t, s.Handler(), ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty body: status = %d, want 400", rec.Code)
	}
}

func TestProbesNotWiredAnswers501(t *testing.T) {
	s := newProbeServer(t, nil)
	rec := postProbes(t, s.Handler(), `{"vehicle":"v","x":1,"y":2,"t":3}`)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", rec.Code)
	}
}

func TestProbesMethodNotAllowed(t *testing.T) {
	s := newProbeServer(t, func(c *Config) { c.Probes = &sinkStub{} })
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/probes", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
}

func TestProbesFullShedAnswers429(t *testing.T) {
	sink := &sinkStub{shedAll: true}
	s := newProbeServer(t, func(c *Config) { c.Probes = sink })
	rec := postProbes(t, s.Handler(), `{"vehicle":"v","x":1,"y":2,"t":3}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	var resp ProbesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || resp.Shed != 1 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestProbesPartialShedStays200(t *testing.T) {
	sink := &sinkStub{accepted: 2, shed: 1}
	s := newProbeServer(t, func(c *Config) { c.Probes = sink })
	body := `{"vehicle":"a","x":1,"y":2,"t":3}
{"vehicle":"b","x":1,"y":2,"t":3}
{"vehicle":"c","x":1,"y":2,"t":3}`
	rec := postProbes(t, s.Handler(), body)
	if rec.Code != http.StatusOK {
		t.Fatalf("partial shed: status = %d, want 200", rec.Code)
	}
	var resp ProbesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Shed != 1 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestProbesBodyCap(t *testing.T) {
	s := newProbeServer(t, func(c *Config) {
		c.Probes = &sinkStub{}
		c.ProbeMaxBodyBytes = 64
	})
	long := `{"vehicle":"veh-1","x":10,"y":20,"t":100}` + "\n"
	rec := postProbes(t, s.Handler(), strings.Repeat(long, 10))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %s)", rec.Code, rec.Body)
	}
}

func TestDebugTrafficServesStatus(t *testing.T) {
	s := newProbeServer(t, func(c *Config) {
		c.TrafficStatus = func() map[string]any {
			return map[string]any{"warm": true, "epoch": 3}
		}
	})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traffic", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["warm"] != true || body["epoch"] != float64(3) {
		t.Fatalf("body = %v", body)
	}
}

func TestDebugTrafficAbsentWhenUnwired(t *testing.T) {
	s := newProbeServer(t, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traffic", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 when TrafficStatus is nil", rec.Code)
	}
}

// TestReadyzTrafficDetailNeverFlipsReadiness: a cold traffic store shows up
// in the /readyz payload but must not turn the probe red — estimates fall
// back to the prior and are still valid.
func TestReadyzTrafficDetailNeverFlipsReadiness(t *testing.T) {
	for name, ready := range map[string]bool{"engine ready": true, "engine not ready": false} {
		s := newProbeServer(t, func(c *Config) {
			c.Ready = func() (bool, map[string]any) { return ready, map[string]any{"snapshot": "m1"} }
			c.TrafficStatus = func() map[string]any {
				return map[string]any{"warm": false, "probes_accepted": 0}
			}
		})
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		wantCode := http.StatusOK
		if !ready {
			wantCode = http.StatusServiceUnavailable
		}
		if rec.Code != wantCode {
			t.Fatalf("%s: status = %d, want %d — traffic state must not affect readiness", name, rec.Code, wantCode)
		}
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		tr, ok := body["traffic"].(map[string]any)
		if !ok {
			t.Fatalf("%s: readyz payload missing traffic detail: %v", name, body)
		}
		if tr["warm"] != false {
			t.Fatalf("%s: traffic detail = %v", name, tr)
		}
		if body["ready"] != ready {
			t.Fatalf("%s: ready = %v", name, body["ready"])
		}
	}
}
