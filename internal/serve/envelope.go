package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// envelope unifies the /debug/* surface: every JSON response carries a
// generated_at stamp as its first field and the uniform Content-Type, and
// every error — whether the inner handler wrote JSON or http.Error text —
// comes out as {"generated_at": ..., "error": "..."}. The inner handlers
// keep their existing payload shapes (the stamp is spliced into the
// object, so typed consumers just ignore an unknown field), and non-JSON
// success bodies (segment downloads, raw pprof blobs, the dashboard HTML)
// pass through byte-for-byte.
func envelope(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bw := &bufferedResponse{header: make(http.Header)}
		h.ServeHTTP(bw, r)

		code := bw.status()
		body := bw.buf.Bytes()
		ok2xx := code >= 200 && code < 300
		isJSON := strings.Contains(bw.header.Get("Content-Type"), "application/json")
		if ok2xx && !isJSON {
			bw.copyTo(w)
			return
		}

		ts := time.Now().UTC().Format(time.RFC3339Nano)
		if stamped, ok := spliceGeneratedAt(body, ts); ok {
			body = stamped
		} else if !ok2xx {
			// http.Error-style text (or an empty body): normalize to the
			// uniform error shape.
			msg := strings.TrimSpace(string(body))
			if msg == "" {
				msg = http.StatusText(code)
			}
			body, _ = json.Marshal(map[string]string{"generated_at": ts, "error": msg})
			body = append(body, '\n')
		}
		for k, vs := range bw.header {
			if k == "Content-Length" || k == "Content-Type" {
				continue
			}
			w.Header()[k] = vs
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_, _ = w.Write(body)
	})
}

// spliceGeneratedAt rewrites a JSON object body to carry
// "generated_at" as its first field. Returns false when the body is not a
// JSON object (arrays and non-JSON text are left to the caller).
func spliceGeneratedAt(body []byte, ts string) ([]byte, bool) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return nil, false
	}
	rest := bytes.TrimLeft(trimmed[1:], " \t\r\n")
	out := make([]byte, 0, len(trimmed)+len(ts)+20)
	out = append(out, '{')
	out = append(out, `"generated_at":"`...)
	out = append(out, ts...)
	out = append(out, '"')
	if len(rest) > 0 && rest[0] != '}' {
		out = append(out, ',')
	}
	out = append(out, trimmed[1:]...)
	return out, true
}

// bufferedResponse captures a handler's response so the envelope can
// rewrite it before anything reaches the wire.
type bufferedResponse struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.code == 0 {
		b.code = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.code == 0 {
		b.code = http.StatusOK
	}
	return b.buf.Write(p)
}

func (b *bufferedResponse) status() int {
	if b.code == 0 {
		return http.StatusOK
	}
	return b.code
}

// copyTo replays the buffered response verbatim.
func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	for k, vs := range b.header {
		w.Header()[k] = vs
	}
	w.WriteHeader(b.status())
	_, _ = w.Write(b.buf.Bytes())
}
