package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"deepod/internal/geo"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// unitCells quantizes points onto unit grid cells for the engine's cache.
type unitCells struct{}

func (unitCells) CellIndex(p geo.Point) int { return int(p.X) + 1000*int(p.Y) }

// newInferServer wires a Server through a stub engine-submit function.
func newInferServer(t *testing.T, do func(context.Context, traj.ODInput) (infer.Result, error), mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		City:     "test-city",
		Infer:    do,
		Registry: obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidateRequestRejectsNonFinite(t *testing.T) {
	s, _ := newTestServer(t)
	good := EstimateRequest{Origin: geo.Point{X: 1, Y: 2}, Dest: geo.Point{X: 3, Y: 4}, DepartSec: 600}
	if msg := s.validateRequest(good); msg != "" {
		t.Fatalf("valid request rejected: %q", msg)
	}
	// JSON cannot carry NaN/Inf literals, so drive the validator directly
	// for each poisoned field.
	for name, req := range map[string]EstimateRequest{
		"origin.X NaN":   {Origin: geo.Point{X: math.NaN(), Y: 2}, Dest: good.Dest, DepartSec: 600},
		"origin.Y +Inf":  {Origin: geo.Point{X: 1, Y: math.Inf(1)}, Dest: good.Dest, DepartSec: 600},
		"dest.X -Inf":    {Origin: good.Origin, Dest: geo.Point{X: math.Inf(-1), Y: 4}, DepartSec: 600},
		"dest.Y NaN":     {Origin: good.Origin, Dest: geo.Point{X: 3, Y: math.NaN()}, DepartSec: 600},
		"depart NaN":     {Origin: good.Origin, Dest: good.Dest, DepartSec: math.NaN()},
		"depart +Inf":    {Origin: good.Origin, Dest: good.Dest, DepartSec: math.Inf(1)},
		"depart negativ": {Origin: good.Origin, Dest: good.Dest, DepartSec: -1},
	} {
		if msg := s.validateRequest(req); msg == "" {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestEstimateOutOfBoundsRejected(t *testing.T) {
	s := newInferServer(t,
		func(context.Context, traj.ODInput) (infer.Result, error) {
			return infer.Result{Seconds: 1}, nil
		},
		func(c *Config) {
			c.Bounds = &geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 100, Y: 100}}
		})
	h := s.Handler()

	rec := postEstimate(t, h, `{"origin":{"X":10,"Y":10},"dest":{"X":20,"Y":20},"depart_sec":0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("in-bounds request = %d, body %s", rec.Code, rec.Body)
	}
	for name, body := range map[string]string{
		"origin outside": `{"origin":{"X":-5,"Y":10},"dest":{"X":20,"Y":20},"depart_sec":0}`,
		"dest outside":   `{"origin":{"X":10,"Y":10},"dest":{"X":20,"Y":999},"depart_sec":0}`,
	} {
		rec := postEstimate(t, h, body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400 (body %s)", name, rec.Code, rec.Body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("%s: error body %q", name, rec.Body)
		}
	}
}

// TestInferErrorMapping checks every engine error class maps onto the
// documented HTTP status, with Retry-After on the shed paths.
func TestInferErrorMapping(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		code       int
		retryAfter string
	}{
		{"overloaded", infer.ErrOverloaded, http.StatusTooManyRequests, "1"},
		{"queue timeout", infer.ErrQueueTimeout, http.StatusServiceUnavailable, "2"},
		{"match failure", &infer.MatchError{Err: errors.New("no segment")}, http.StatusUnprocessableEntity, ""},
		{"invalid input", infer.ErrInvalidInput, http.StatusBadRequest, ""},
		{"cancelled", context.Canceled, http.StatusServiceUnavailable, ""},
		{"internal", errors.New("boom"), http.StatusInternalServerError, ""},
	}
	for _, tc := range cases {
		s := newInferServer(t, func(context.Context, traj.ODInput) (infer.Result, error) {
			return infer.Result{}, tc.err
		}, nil)
		rec := postEstimate(t, s.Handler(), `{"origin":{"X":1,"Y":1},"dest":{"X":2,"Y":2},"depart_sec":0}`)
		if rec.Code != tc.code {
			t.Fatalf("%s: status = %d, want %d (body %s)", tc.name, rec.Code, tc.code, rec.Body)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.retryAfter {
			t.Fatalf("%s: Retry-After = %q, want %q", tc.name, got, tc.retryAfter)
		}
	}
}

func TestInferSuccessCarriesCacheAndModel(t *testing.T) {
	s := newInferServer(t, func(context.Context, traj.ODInput) (infer.Result, error) {
		return infer.Result{Seconds: 90, Cached: true, SnapshotID: "abc123"}, nil
	}, nil)
	rec := postEstimate(t, s.Handler(), `{"origin":{"X":1,"Y":1},"dest":{"X":2,"Y":2},"depart_sec":0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TravelSeconds != 90 || !resp.Cached || resp.Model != "abc123" {
		t.Fatalf("resp = %+v, want 90s cached from abc123", resp)
	}
}

func TestVersionEndpoint(t *testing.T) {
	s := newInferServer(t, func(context.Context, traj.ODInput) (infer.Result, error) {
		return infer.Result{}, nil
	}, func(c *Config) {
		c.Version = func() map[string]any {
			return map[string]any{"model": "deadbeef", "generation": uint64(3)}
		}
	})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/version", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /version = %d, body %s", rec.Code, rec.Body)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["city"] != "test-city" || body["model"] != "deadbeef" {
		t.Fatalf("version body = %v", body)
	}
	if body["go"] == nil || body["go"] == "" {
		t.Fatalf("version body missing go runtime: %v", body)
	}
	if body["generation"] != float64(3) { // JSON numbers decode as float64
		t.Fatalf("generation = %v, want 3", body["generation"])
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/version", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /version = %d, want 405", rec.Code)
	}
}

func TestReloadEndpoint(t *testing.T) {
	var calls int
	s := newInferServer(t, func(context.Context, traj.ODInput) (infer.Result, error) {
		return infer.Result{}, nil
	}, func(c *Config) {
		c.Reload = func(context.Context) (map[string]any, error) {
			calls++
			if calls > 1 {
				return nil, fmt.Errorf("checkpoint is corrupt")
			}
			return map[string]any{"model": "new-model"}, nil
		}
	})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /reload = %d, body %s", rec.Code, rec.Body)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["reloaded"] != true || body["model"] != "new-model" {
		t.Fatalf("reload body = %v", body)
	}

	// Second call: the stub now fails — the route must answer 500 and keep
	// the error in the JSON shape.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("failing reload = %d, want 500 (body %s)", rec.Code, rec.Body)
	}

	// GET is not allowed.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/reload", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload = %d, want 405", rec.Code)
	}
}

func TestReloadUnwiredIs501(t *testing.T) {
	s, _ := newTestServer(t) // direct-path server: no Reload callback
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("unwired reload = %d, want 501", rec.Code)
	}
}

// TestEngineEndToEndOverHTTP drives a real infer.Engine through the HTTP
// layer: a request is served, its repeat hits the cache, and a /reload-style
// Swap changes the served model — the serve↔infer integration seam.
func TestEngineEndToEndOverHTTP(t *testing.T) {
	eng, err := infer.New(infer.Config{
		Match: func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			return traj.MatchedOD{DepartSec: od.DepartSec}, nil
		},
		Snapshot: &infer.Snapshot{ID: "m1", Estimate: func(context.Context, *traj.MatchedOD) float64 { return 60 }},
		Workers:  2, QueueDepth: 16, MaxBatch: 4,
		CacheEntries: 64,
		Cells:        unitCells{},
		Slotter:      timeslot.MustNew(5 * time.Minute),
		Registry:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	s := newInferServer(t, eng.Do, func(c *Config) {
		c.Version = eng.Version
		c.Reload = func(context.Context) (map[string]any, error) {
			prev, err := eng.Swap(&infer.Snapshot{ID: "m2", Estimate: func(context.Context, *traj.MatchedOD) float64 { return 120 }})
			if err != nil {
				return nil, err
			}
			return map[string]any{"model": "m2", "previous": prev.ID}, nil
		}
	})
	h := s.Handler()
	body := `{"origin":{"X":1,"Y":1},"dest":{"X":2,"Y":2},"depart_sec":600}`

	rec := postEstimate(t, h, body)
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || resp.TravelSeconds != 60 || resp.Cached || resp.Model != "m1" {
		t.Fatalf("first response = %d %+v", rec.Code, resp)
	}

	rec = postEstimate(t, h, body)
	resp = EstimateResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached || resp.TravelSeconds != 60 {
		t.Fatalf("repeat response not cached: %+v", resp)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload = %d, body %s", rec.Code, rec.Body)
	}

	rec = postEstimate(t, h, body)
	resp = EstimateResponse{} // cached is omitempty: decode into a zero struct
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.TravelSeconds != 120 || resp.Model != "m2" {
		t.Fatalf("post-reload response = %+v, want fresh 120 from m2", resp)
	}
}
