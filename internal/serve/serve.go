// Package serve implements the tteserve HTTP API — the paper's online
// estimation stage (Algorithm 1) as a long-lived service. It is split out
// of cmd/tteserve so the routes can be exercised with httptest against
// stub estimators: the Server depends only on callbacks for map matching
// and estimation, never on a trained model.
//
// Routes:
//
//	POST /estimate  JSON OD input → travel time estimate
//	GET  /healthz   liveness + model summary
//	GET  /metrics   Prometheus text exposition of the obs registry
//
// Every route is wrapped with obs.Instrument (request counters by status
// class, latency histograms, in-flight gauge, request logging), /estimate
// bodies are size-capped, and all errors are JSON: {"error": "..."}.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"deepod/internal/geo"
	"deepod/internal/obs"
	"deepod/internal/traj"
)

// DefaultMaxBodyBytes caps /estimate request bodies (1 MiB; a valid OD
// request is under 200 bytes).
const DefaultMaxBodyBytes = 1 << 20

// Config assembles a Server from its dependencies.
type Config struct {
	// City names the served city (reported by /healthz).
	City string
	// Match snaps an OD input onto road segments (deepod.MatchOD closed
	// over a matcher). Required.
	Match func(traj.ODInput) (traj.MatchedOD, error)
	// Estimate runs the online estimation on a matched OD. Required.
	Estimate func(*traj.MatchedOD) float64
	// External resolves the external features (weather, speed grid) for a
	// departure time. Optional; nil means no external features.
	External func(departSec float64) *traj.ExternalFeatures
	// Health adds static fields to the /healthz payload (edge count,
	// weight count, ...). Optional.
	Health map[string]any
	// MaxBodyBytes caps /estimate bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Registry receives the HTTP metrics and serves /metrics (default
	// obs.Default()).
	Registry *obs.Registry
	// Logf, when non-nil, receives one line per request.
	Logf obs.Logf
}

// Server is the assembled HTTP API.
type Server struct {
	cfg Config
	reg *obs.Registry
	mux *http.ServeMux
}

// New validates cfg and builds the route table.
func New(cfg Config) (*Server, error) {
	if cfg.Match == nil || cfg.Estimate == nil {
		return nil, fmt.Errorf("serve: Config.Match and Config.Estimate are required")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	s := &Server{cfg: cfg, reg: cfg.Registry, mux: http.NewServeMux()}
	route := func(pattern string, h http.HandlerFunc) {
		s.mux.Handle(pattern, obs.Instrument(s.reg, pattern, cfg.Logf, h))
	}
	route("/estimate", s.handleEstimate)
	route("/healthz", s.handleHealth)
	s.mux.Handle("/metrics", s.reg.Handler())
	return s, nil
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// EstimateRequest is the POST /estimate body.
type EstimateRequest struct {
	Origin    geo.Point `json:"origin"`
	Dest      geo.Point `json:"dest"`
	DepartSec float64   `json:"depart_sec"`
}

// EstimateResponse is the POST /estimate success body.
type EstimateResponse struct {
	TravelSeconds float64 `json:"travel_seconds"`
	TravelHuman   string  `json:"travel_human"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	ctx, decodeSpan := s.reg.StartSpan(r.Context(), "decode")
	var req EstimateRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	decodeSpan.End()
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	if req.DepartSec < 0 {
		writeError(w, http.StatusBadRequest, "depart_sec must be non-negative")
		return
	}

	od := traj.ODInput{
		Origin:    req.Origin,
		Dest:      req.Dest,
		DepartSec: req.DepartSec,
	}
	if s.cfg.External != nil {
		od.External = s.cfg.External(req.DepartSec)
	}
	_, matchSpan := s.reg.StartSpan(ctx, "match")
	matched, err := s.cfg.Match(od)
	matchSpan.End()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("map matching failed: %v", err))
		return
	}

	sec := s.cfg.Estimate(&matched) // encode + estimate spans recorded by core
	writeJSON(w, http.StatusOK, EstimateResponse{
		TravelSeconds: sec,
		TravelHuman:   time.Duration(sec * float64(time.Second)).Round(time.Second).String(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	body := map[string]any{"status": "ok", "city": s.cfg.City}
	for k, v := range s.cfg.Health {
		body[k] = v
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// writeError emits the API's uniform error shape: {"error": "..."}.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// NewHTTPServer wraps h in an http.Server with the serving timeouts the
// seed's bare ListenAndServe lacked: slowloris-resistant header reads,
// bounded request reads and writes, and idle-connection reaping.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// ListenAndServe runs srv until it fails or ctx is cancelled, then drains
// in-flight requests for up to grace before forcing connections closed.
// It returns nil on a clean shutdown.
func ListenAndServe(ctx context.Context, srv *http.Server, grace time.Duration, logf obs.Logf) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if logf != nil {
		logf("shutting down (draining up to %s)...", grace)
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
