// Package serve implements the tteserve HTTP API — the paper's online
// estimation stage (Algorithm 1) as a long-lived service. It is split out
// of cmd/tteserve so the routes can be exercised with httptest against
// stub estimators: the Server depends only on callbacks for map matching
// and estimation (or an infer-engine submit function), never on a trained
// model.
//
// Routes:
//
//	POST /estimate      JSON OD input → travel time estimate
//	POST /probes        NDJSON GPS probe firehose → live traffic state (when Config.Probes set)
//	POST /feedback      ground-truth travel time for a served prediction
//	GET  /healthz       liveness + model summary
//	GET  /readyz        readiness: 503 until a snapshot serves (k8s-style)
//	GET  /version       live model snapshot, engine config and build info
//	POST /reload        hot-swap the model checkpoint (when wired)
//	GET  /metrics       Prometheus text exposition of the obs registry
//	GET  /debug/traces  tail-sampled request traces (when Config.Traces set)
//	GET  /debug/quality model-quality state (when Config.Quality set)
//	GET  /debug/slo     SLO status: per-objective SLI, budget, burn rates (when Config.SLO set)
//	GET  /debug/alerts  firing alerts + transition history (when Config.Alerts set)
//	GET  /debug/profiles captured profile bundles; /debug/profiles/<id>/<kind>
//	     downloads raw pprof data (when Config.Profiles set)
//	GET  /debug/traffic live traffic-store state: probes, coverage, epoch
//	     (when Config.TrafficStatus set)
//	GET  /debug/recorder flight-recorder wide events (filters: generation,
//	     epoch, errors, minDur, limit); /debug/recorder/segments lists and
//	     /debug/recorder/segments/<name> downloads on-disk segments (when
//	     Config.Recorder set)
//	GET  /debug/metrics/history queryable in-process metric history:
//	     ?series=&range=&step=&agg= (when Config.History set)
//	GET  /debug/dashboard unified ops view — SLO, alerts, quality, traffic,
//	     recorder, telemetry history sparklines — as self-contained HTML, or
//	     JSON with ?format=json
//
// Every /debug/* JSON response is wrapped by a shared envelope: a
// generated_at timestamp is spliced in as the first field, Content-Type is
// uniformly application/json, and errors share the {"error": "..."} shape.
// Non-JSON debug bodies (segment and pprof downloads, dashboard HTML) pass
// through verbatim.
//
// Every route is wrapped with obs.Middleware (request counters by status
// class, latency histograms, in-flight gauge, request logging), /estimate
// bodies are size-capped, and all errors are JSON: {"error": "..."}.
//
// When Config.Traces is set every request is traced: the trace ID comes
// from the X-Trace-Id header (or is generated) and is echoed in the
// response, handler stages become spans in the request's tree, and the
// finished trace is tail-sampled into the store behind /debug/traces.
// With Config.Logger set, requests are logged via slog — errors always,
// successes sampled — correlated to traces by trace_id.
//
// When Config.Infer is set, /estimate routes through the inference engine
// and its admission-control errors map onto HTTP: ErrOverloaded → 429 and
// ErrQueueTimeout → 503 (both with Retry-After), MatchError → 422,
// ErrInvalidInput → 400.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"time"

	"deepod/internal/geo"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/prof"
	"deepod/internal/quality"
	"deepod/internal/recorder"
	"deepod/internal/slo"
	"deepod/internal/telemetry"
	"deepod/internal/traffic"
	"deepod/internal/traj"
)

// DefaultMaxBodyBytes caps /estimate request bodies (1 MiB; a valid OD
// request is under 200 bytes).
const DefaultMaxBodyBytes = 1 << 20

// Config assembles a Server from its dependencies. Exactly one estimate
// path must be wired: either Infer (the engine path) or Match+Estimate
// (the direct path).
type Config struct {
	// City names the served city (reported by /healthz).
	City string
	// Infer submits the request to an inference engine (infer.Engine.Do).
	// When set, Match/Estimate are ignored and the engine owns matching,
	// batching, caching and admission control.
	Infer func(ctx context.Context, od traj.ODInput) (infer.Result, error)
	// Match snaps an OD input onto road segments (deepod.MatchODCtx closed
	// over a matcher). Required unless Infer is set. The context carries
	// the request's trace.
	Match func(ctx context.Context, od traj.ODInput) (traj.MatchedOD, error)
	// Estimate runs the online estimation on a matched OD (for example
	// core.Model.EstimateCtx). Required unless Infer is set.
	Estimate func(ctx context.Context, od *traj.MatchedOD) float64
	// Bounds, when non-nil, rejects estimate requests whose origin or
	// destination falls outside the road network's bounding box with 400
	// before they reach map matching.
	Bounds *geo.Rect
	// Version adds live-model fields (snapshot ID, generation, engine
	// config — infer.Engine.Version) to the /version payload. Optional.
	Version func() map[string]any
	// Reload hot-swaps the serving model; its map is echoed in the
	// /reload response. Optional; when nil the route answers 501. The
	// context carries the request's trace so checkpoint-load and swap
	// spans land in the reload trace.
	Reload func(ctx context.Context) (map[string]any, error)
	// Ready reports whether the server should receive traffic, with a
	// detail payload for /readyz (infer.Engine.Readiness). Optional; when
	// nil /readyz always answers 200 (the direct path has no load/reload
	// lifecycle to gate on).
	Ready func() (bool, map[string]any)
	// External resolves the external features (weather, speed grid) for a
	// departure time. Optional; nil means no external features.
	External func(departSec float64) *traj.ExternalFeatures
	// Health adds static fields to the /healthz payload (edge count,
	// weight count, ...). Optional.
	Health map[string]any
	// MaxBodyBytes caps /estimate bodies (default DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Registry receives the HTTP metrics and serves /metrics (default
	// obs.Default()).
	Registry *obs.Registry
	// Logf, when non-nil, receives one line per request.
	Logf obs.Logf
	// Logger, when non-nil, emits structured request logs (5xx at Error
	// and 4xx at Warn always; 2xx/3xx at Info sampled by AccessLogEvery),
	// correlated to traces when its handler wraps obs.TraceHandler.
	Logger *slog.Logger
	// AccessLogEvery samples success access logs: every Nth 2xx/3xx
	// request per route (<=1 logs all).
	AccessLogEvery int
	// Traces, when non-nil, enables request tracing and mounts the store's
	// handler at /debug/traces.
	Traces *obs.TraceStore
	// Quality, when non-nil, accepts ground-truth feedback at POST
	// /feedback and serves the model-quality state at GET /debug/quality.
	// It only closes the loop on the engine path: the engine's Recorder
	// stamps responses with the prediction IDs feedback joins against.
	Quality *quality.Monitor
	// SLO, when non-nil, serves the evaluator's objective status at GET
	// /debug/slo. The evaluator's lifecycle (Start/Close) belongs to the
	// caller; the server only exposes it.
	SLO *slo.Evaluator
	// Alerts, when non-nil, serves the alert manager's firing set and
	// transition history at GET /debug/alerts.
	Alerts *slo.Manager
	// Profiles, when non-nil, serves captured profile bundles at GET
	// /debug/profiles (list), GET /debug/profiles/<id>/<kind> (raw pprof
	// download) and POST /debug/profiles/capture (on-demand capture).
	Profiles *prof.Profiler
	// Probes, when non-nil, accepts the GPS probe firehose at POST /probes
	// (NDJSON, one probe per line). Implemented by traffic.Ingestor. A nil
	// sink leaves the route answering 501 — ingestion disabled.
	Probes ProbeSink
	// ProbeMaxBodyBytes caps /probes bodies (default
	// DefaultProbeMaxBodyBytes; firehose bodies are much larger than OD
	// requests).
	ProbeMaxBodyBytes int64
	// TrafficStatus, when non-nil, reports the live traffic pipeline's
	// state: it is served raw at GET /debug/traffic and merged into the
	// /readyz payload under "traffic" — warm-up visibility that never flips
	// readiness (a replica without probes still serves from the prior).
	TrafficStatus func() map[string]any
	// Recorder, when non-nil, serves the flight recorder's wide events at
	// GET /debug/recorder and its on-disk segments at
	// /debug/recorder/segments[/<name>]. Capture itself is wired at the
	// engine (infer.Config.Flight); the server only exposes it.
	Recorder *recorder.Recorder
	// History, when non-nil, serves the telemetry sampler's in-process
	// time series at GET /debug/metrics/history and feeds the dashboard's
	// sparklines. The sampler's lifecycle (Start/Close) belongs to the
	// caller; the server only exposes it.
	History *telemetry.History
	// Exporter, when non-nil, surfaces the push exporter's delivery stats
	// on the dashboard. Lifecycle belongs to the caller.
	Exporter *telemetry.Exporter
}

// ProbeSink ingests a parsed probe batch, returning how many probes were
// accepted vs shed by the bounded ingest queue. Must be safe for concurrent
// use. Implemented by traffic.Ingestor.
type ProbeSink interface {
	Ingest(batch []traffic.Probe) (accepted, shed int)
}

// DefaultProbeMaxBodyBytes caps /probes request bodies (8 MiB ≈ 100k
// probes per POST).
const DefaultProbeMaxBodyBytes = 8 << 20

// Server is the assembled HTTP API.
type Server struct {
	cfg Config
	reg *obs.Registry
	mux *http.ServeMux
}

// New validates cfg and builds the route table.
func New(cfg Config) (*Server, error) {
	if cfg.Infer == nil && (cfg.Match == nil || cfg.Estimate == nil) {
		return nil, fmt.Errorf("serve: Config needs either Infer or both Match and Estimate")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.ProbeMaxBodyBytes <= 0 {
		cfg.ProbeMaxBodyBytes = DefaultProbeMaxBodyBytes
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	s := &Server{cfg: cfg, reg: cfg.Registry, mux: http.NewServeMux()}
	mw := obs.Middleware{
		Registry:       s.reg,
		Logf:           cfg.Logf,
		Logger:         cfg.Logger,
		AccessLogEvery: cfg.AccessLogEvery,
		Traces:         cfg.Traces,
	}
	route := func(pattern string, h http.HandlerFunc) {
		s.mux.Handle(pattern, mw.Wrap(pattern, h))
	}
	route("/estimate", s.handleEstimate)
	route("/probes", s.handleProbes)
	route("/feedback", s.handleFeedback)
	route("/healthz", s.handleHealth)
	route("/readyz", s.handleReady)
	route("/version", s.handleVersion)
	route("/reload", s.handleReload)
	s.mux.Handle("/metrics", s.reg.Handler())
	// Debug routes are served outside the obs middleware — inspecting the
	// process should not show up in request metrics or create traces — but
	// wrapped in envelope() so every JSON response carries generated_at and
	// the uniform error shape. Raw bodies (segment/pprof downloads, the
	// dashboard HTML) pass through the envelope untouched.
	if cfg.Traces != nil {
		s.mux.Handle("/debug/traces", envelope(cfg.Traces.Handler()))
	}
	if cfg.Quality != nil {
		s.mux.Handle("/debug/quality", envelope(cfg.Quality.Handler()))
	}
	if cfg.SLO != nil {
		s.mux.Handle("/debug/slo", envelope(cfg.SLO.Handler()))
	}
	if cfg.Alerts != nil {
		s.mux.Handle("/debug/alerts", envelope(cfg.Alerts.Handler()))
	}
	if cfg.Profiles != nil {
		// The trailing-slash pattern also routes the per-capture download
		// paths (/debug/profiles/<id>/<kind>) to the profiler.
		h := envelope(cfg.Profiles.Handler())
		s.mux.Handle("/debug/profiles", h)
		s.mux.Handle("/debug/profiles/", h)
	}
	if cfg.TrafficStatus != nil {
		s.mux.Handle("/debug/traffic", envelope(http.HandlerFunc(s.handleTrafficDebug)))
	}
	if cfg.Recorder != nil {
		// The trailing-slash pattern also routes the segment paths
		// (/debug/recorder/segments/<name>) to the recorder.
		h := envelope(cfg.Recorder.Handler())
		s.mux.Handle("/debug/recorder", h)
		s.mux.Handle("/debug/recorder/", h)
	}
	if cfg.History != nil {
		s.mux.Handle("/debug/metrics/history", envelope(cfg.History.Handler()))
	}
	s.mux.Handle("/debug/dashboard", envelope(http.HandlerFunc(s.handleDashboard)))
	return s, nil
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// EstimateRequest is the POST /estimate body.
type EstimateRequest struct {
	Origin    geo.Point `json:"origin"`
	Dest      geo.Point `json:"dest"`
	DepartSec float64   `json:"depart_sec"`
}

// EstimateResponse is the POST /estimate success body.
type EstimateResponse struct {
	TravelSeconds float64 `json:"travel_seconds"`
	TravelHuman   string  `json:"travel_human"`
	// Cached and Model are set on the engine path: whether the answer came
	// from the estimate cache and which model snapshot produced it.
	Cached bool   `json:"cached,omitempty"`
	Model  string `json:"model,omitempty"`
	// PredictionID is set when quality monitoring is on: echo it back in
	// POST /feedback with the trip's actual travel time.
	PredictionID string `json:"prediction_id,omitempty"`
}

// validateRequest rejects inputs that must not reach map matching:
// non-finite coordinates or departure (their distance math is poison),
// negative departures, and — when the network bounds are known — points
// outside them. Returns a client-facing message, or "" when valid.
func (s *Server) validateRequest(req EstimateRequest) string {
	for _, c := range [...]struct {
		name string
		v    float64
	}{
		{"origin.X", req.Origin.X}, {"origin.Y", req.Origin.Y},
		{"dest.X", req.Dest.X}, {"dest.Y", req.Dest.Y},
		{"depart_sec", req.DepartSec},
	} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Sprintf("%s must be a finite number", c.name)
		}
	}
	if req.DepartSec < 0 {
		return "depart_sec must be non-negative"
	}
	if s.cfg.Bounds != nil {
		if !s.cfg.Bounds.Contains(req.Origin) {
			return fmt.Sprintf("origin %+v is outside the road network bounds", req.Origin)
		}
		if !s.cfg.Bounds.Contains(req.Dest) {
			return fmt.Sprintf("dest %+v is outside the road network bounds", req.Dest)
		}
	}
	return ""
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	// Stages below span off the request context (which carries the trace
	// and the middleware's root span), not off each other: decode, match
	// and the engine stages are siblings under the route's root span.
	ctx := r.Context()
	_, decodeSpan := s.reg.StartSpan(ctx, "decode")
	var req EstimateRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	decodeSpan.End()
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	if msg := s.validateRequest(req); msg != "" {
		writeError(w, http.StatusBadRequest, msg)
		return
	}

	od := traj.ODInput{
		Origin:    req.Origin,
		Dest:      req.Dest,
		DepartSec: req.DepartSec,
	}
	if s.cfg.External != nil {
		od.External = s.cfg.External(req.DepartSec)
	}

	if s.cfg.Infer != nil {
		res, err := s.cfg.Infer(ctx, od)
		if err != nil {
			writeInferError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, EstimateResponse{
			TravelSeconds: res.Seconds,
			TravelHuman:   humanDuration(res.Seconds),
			Cached:        res.Cached,
			Model:         res.SnapshotID,
			PredictionID:  res.PredictionID,
		})
		return
	}

	mctx, matchSpan := s.reg.StartSpan(ctx, "match")
	matched, err := s.cfg.Match(mctx, od)
	if err != nil {
		matchSpan.Fail(err)
		matchSpan.End()
		writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("map matching failed: %v", err))
		return
	}
	matchSpan.End()

	sec := s.cfg.Estimate(ctx, &matched) // encode + estimate spans recorded by core
	writeJSON(w, http.StatusOK, EstimateResponse{
		TravelSeconds: sec,
		TravelHuman:   humanDuration(sec),
	})
}

// ProbesResponse is the POST /probes success body: how many probes the
// bounded ingest queue accepted vs shed. Shedding is not an error — the
// firehose is best-effort by design — but a fully shed batch answers 429 so
// well-behaved emitters back off.
type ProbesResponse struct {
	Accepted int `json:"accepted"`
	Shed     int `json:"shed"`
}

// handleProbes ingests the GPS probe firehose: an NDJSON body, one
// traffic.Probe per line. The whole body is parsed before ingestion — a
// malformed line rejects the batch with 400 rather than half-applying it —
// then handed to the sink in one call so the per-vehicle routing happens
// once. 501 until Config.Probes is wired.
func (s *Server) handleProbes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cfg.Probes == nil {
		writeError(w, http.StatusNotImplemented, "probe ingestion is not wired on this server")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.ProbeMaxBodyBytes)

	ctx := r.Context()
	_, decodeSpan := s.reg.StartSpan(ctx, "decode")
	// NDJSON decodes with a plain json.Decoder loop: newlines between
	// values are JSON whitespace, so Decode naturally consumes one probe
	// per iteration without a line splitter.
	var batch []traffic.Probe
	dec := json.NewDecoder(r.Body)
	var err error
	for {
		var p traffic.Probe
		if err = dec.Decode(&p); err != nil {
			break
		}
		batch = append(batch, p)
	}
	decodeSpan.End()
	if !errors.Is(err, io.EOF) {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad probe at line %d: %v", len(batch)+1, err))
		return
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty probe batch")
		return
	}

	_, ingestSpan := s.reg.StartSpan(ctx, "ingest")
	accepted, shed := s.cfg.Probes.Ingest(batch)
	ingestSpan.SetBool("shed", shed > 0)
	ingestSpan.End()
	if accepted == 0 && shed > 0 {
		// The queue is saturated; tell the emitter to slow down rather
		// than silently eating its entire batch.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ProbesResponse{Accepted: accepted, Shed: shed})
		return
	}
	writeJSON(w, http.StatusOK, ProbesResponse{Accepted: accepted, Shed: shed})
}

// handleTrafficDebug serves the live traffic pipeline's state — probe
// counters, edge coverage, epoch, high-water sim time — for operators
// checking whether the real-time channel is warm.
func (s *Server) handleTrafficDebug(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.TrafficStatus())
}

// FeedbackRequest is the POST /feedback body: the prediction ID echoed by
// /estimate (trip_id is accepted as an alias — callers that key trips
// themselves can pass their own handle through) plus the trip's actual
// travel time once it completed.
type FeedbackRequest struct {
	PredictionID  string  `json:"prediction_id"`
	TripID        string  `json:"trip_id,omitempty"`
	ActualSeconds float64 `json:"actual_seconds"`
}

// FeedbackResponse is the POST /feedback success body.
type FeedbackResponse struct {
	// Joined reports whether the feedback matched a pending prediction.
	// False means the ID is unknown, already answered, or waited past the
	// pending TTL — all accepted (200) but counted as orphans.
	Joined bool `json:"joined"`
	// PredictedSeconds, AbsErrorSeconds and Model are set on a join.
	PredictedSeconds float64 `json:"predicted_seconds,omitempty"`
	AbsErrorSeconds  float64 `json:"abs_error_seconds,omitempty"`
	Model            string  `json:"model,omitempty"`
}

// handleFeedback ingests ground truth for a served prediction and feeds
// the quality monitor. 501 until Config.Quality is wired.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cfg.Quality == nil {
		writeError(w, http.StatusNotImplemented, "quality monitoring is not wired on this server")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

	ctx := r.Context()
	_, decodeSpan := s.reg.StartSpan(ctx, "decode")
	var req FeedbackRequest
	err := json.NewDecoder(r.Body).Decode(&req)
	decodeSpan.End()
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	id := req.PredictionID
	if id == "" {
		id = req.TripID
	}
	if id == "" {
		writeError(w, http.StatusBadRequest, "prediction_id (or trip_id) is required")
		return
	}

	_, joinSpan := s.reg.StartSpan(ctx, "quality.join")
	res, err := s.cfg.Quality.Feedback(id, req.ActualSeconds)
	if err != nil {
		joinSpan.Fail(err)
		joinSpan.End()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	joinSpan.SetBool("joined", res.Joined)
	joinSpan.End()
	writeJSON(w, http.StatusOK, FeedbackResponse{
		Joined:           res.Joined,
		PredictedSeconds: res.PredictedSeconds,
		AbsErrorSeconds:  res.AbsErrorSeconds,
		Model:            res.Model,
	})
}

func humanDuration(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Second).String()
}

// writeInferError maps engine errors onto HTTP statuses. Shed requests get
// a Retry-After hint: queue-full is instantaneous back-pressure (retry
// right away against fresh capacity), queue-timeout means the pool is
// saturated (retry later).
func writeInferError(w http.ResponseWriter, err error) {
	var matchErr *infer.MatchError
	switch {
	case errors.Is(err, infer.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server overloaded, retry shortly")
	case errors.Is(err, infer.ErrQueueTimeout):
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusServiceUnavailable, "timed out waiting for an estimation worker")
	case errors.As(err, &matchErr):
		writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("map matching failed: %v", matchErr.Err))
	case errors.Is(err, infer.ErrInvalidInput):
		writeError(w, http.StatusBadRequest, "invalid OD input")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone; the status is for the access log.
		writeError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("estimation failed: %v", err))
	}
}

// handleVersion reports what is serving: build info resolved from the
// binary plus the live-model fields from Config.Version (snapshot hash,
// generation, engine tuning) — so operators can tell which checkpoint is
// live after a /reload or SIGHUP.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	body := map[string]any{"city": s.cfg.City}
	// The same fields obs.RegisterBuildInfo publishes as tte_build_info
	// labels, so the metric and the endpoint never disagree.
	for k, v := range obs.BuildFields() {
		body[k] = v
	}
	if s.cfg.Version != nil {
		for k, v := range s.cfg.Version() {
			body[k] = v
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReload triggers a hot model swap via Config.Reload.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cfg.Reload == nil {
		writeError(w, http.StatusNotImplemented, "reload is not wired on this server")
		return
	}
	meta, err := s.cfg.Reload(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("reload failed: %v", err))
		return
	}
	body := map[string]any{"reloaded": true}
	for k, v := range meta {
		body[k] = v
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReady is the k8s-style readiness probe, distinct from /healthz
// (liveness): a live process may still be unable to serve — no snapshot
// loaded yet, engine closed, or stuck after a failed reload. Orchestrators
// route traffic on 200 and drain on 503; the payload carries the serving
// checkpoint hash and queue depth either way.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ready := true
	body := map[string]any{"city": s.cfg.City}
	if s.cfg.Ready != nil {
		ok, detail := s.cfg.Ready()
		ready = ok
		for k, v := range detail {
			body[k] = v
		}
	}
	if s.cfg.TrafficStatus != nil {
		// Warm-up visibility only: a cold traffic store never flips
		// readiness, because estimates fall back to the training-time
		// prior and are still correct answers.
		body["traffic"] = s.cfg.TrafficStatus()
	}
	body["ready"] = ready
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	body := map[string]any{"status": "ok", "city": s.cfg.City}
	for k, v := range s.cfg.Health {
		body[k] = v
	}
	writeJSON(w, http.StatusOK, body)
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// writeError emits the API's uniform error shape: {"error": "..."}.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// NewHTTPServer wraps h in an http.Server with the serving timeouts the
// seed's bare ListenAndServe lacked: slowloris-resistant header reads,
// bounded request reads and writes, and idle-connection reaping.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// ListenAndServe runs srv until it fails or ctx is cancelled, then drains
// in-flight requests for up to grace before forcing connections closed.
// It returns nil on a clean shutdown.
func ListenAndServe(ctx context.Context, srv *http.Server, grace time.Duration, logf obs.Logf) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if logf != nil {
		logf("shutting down (draining up to %s)...", grace)
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
