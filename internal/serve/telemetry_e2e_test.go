package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"deepod/internal/obs"
	"deepod/internal/telemetry"
	"deepod/internal/traj"
)

func TestEnvelopeStampsJSON(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"answer":42}`))
	})
	rec := httptest.NewRecorder()
	envelope(inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.HasPrefix(body, `{"generated_at":"`) {
		t.Fatalf("generated_at is not the first field: %s", body)
	}
	var out struct {
		GeneratedAt time.Time `json:"generated_at"`
		Answer      int       `json:"answer"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Answer != 42 || out.GeneratedAt.IsZero() {
		t.Fatalf("envelope mangled the payload: %+v", out)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestEnvelopePassesRawBodiesThrough(t *testing.T) {
	raw := []byte("raw pprof bytes \x00\x01 not json")
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="cpu.pb.gz"`)
		_, _ = w.Write(raw)
	})
	rec := httptest.NewRecorder()
	envelope(inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Body.String() != string(raw) {
		t.Fatalf("raw body altered: %q", rec.Body.String())
	}
	if got := rec.Header().Get("Content-Disposition"); !strings.Contains(got, "cpu.pb.gz") {
		t.Fatalf("headers not replayed: %q", got)
	}
}

func TestEnvelopeNormalizesErrors(t *testing.T) {
	// http.Error-style plain text becomes the uniform JSON error shape.
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such segment", http.StatusNotFound)
	})
	rec := httptest.NewRecorder()
	envelope(inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		GeneratedAt time.Time `json:"generated_at"`
		Error       string    `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("error body is not JSON: %v: %s", err, rec.Body)
	}
	if out.Error != "no such segment" || out.GeneratedAt.IsZero() {
		t.Fatalf("normalized error = %+v", out)
	}

	// A handler that already writes JSON errors keeps its shape, stamped.
	jsonErr := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusBadRequest, "bad agg")
	})
	rec = httptest.NewRecorder()
	envelope(jsonErr).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Error != "bad agg" || out.GeneratedAt.IsZero() {
		t.Fatalf("stamped JSON error = %+v", out)
	}
}

func TestDebugRoutesCarryGeneratedAt(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{
		City:     "env-city",
		Match:    func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) { return traj.MatchedOD{}, nil },
		Estimate: func(context.Context, *traj.MatchedOD) float64 { return 1 },
		Registry: reg,
		TrafficStatus: func() map[string]any {
			return map[string]any{"probes_accepted": 7}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traffic", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var out struct {
		GeneratedAt    time.Time `json:"generated_at"`
		ProbesAccepted int       `json:"probes_accepted"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.GeneratedAt.IsZero() || out.ProbesAccepted != 7 {
		t.Fatalf("enveloped traffic payload = %+v", out)
	}
}

// exportSink is an in-process OTLP-shaped collector.
type exportSink struct {
	mu     sync.Mutex
	bodies [][]byte
}

func (s *exportSink) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		s.bodies = append(s.bodies, body)
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})
}

func (s *exportSink) all() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []byte
	for _, b := range s.bodies {
		out = append(out, b...)
	}
	return out
}

// TestTelemetryEndToEnd drives the full telemetry loop through the HTTP
// layer: traced /estimate requests record exemplars on the route latency
// histogram, the history sampler harvests them into queryable series, the
// exemplar's trace ID resolves to the retained trace in /debug/traces,
// the push exporter delivers the history to an in-process sink, and the
// dashboard aggregates all of it in JSON and HTML modes.
func TestTelemetryEndToEnd(t *testing.T) {
	obs.SetExemplars(true)
	defer obs.SetExemplars(false)

	reg := obs.NewRegistry()
	ts := obs.NewTraceStore(reg, obs.TraceStoreConfig{SlowestN: -1, SampleRate: 1, Seed: 1})

	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	hist, err := telemetry.NewHistory(telemetry.Config{
		Interval: 10 * time.Second,
		Source:   reg,
		Registry: obs.NewRegistry(),
		Now:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	sink := &exportSink{}
	sinkSrv := httptest.NewServer(sink.handler())
	defer sinkSrv.Close()
	exp, err := telemetry.NewExporter(telemetry.ExportConfig{
		Endpoint: sinkSrv.URL,
		Interval: time.Hour, // collected by hand below
		History:  hist,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	exp.Start()
	defer exp.Close()

	s, err := New(Config{
		City: "telemetry-city",
		Match: func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			return traj.MatchedOD{DepartSec: od.DepartSec}, nil
		},
		Estimate: func(context.Context, *traj.MatchedOD) float64 { return 42 },
		Registry: reg,
		Traces:   ts,
		History:  hist,
		Exporter: exp,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	estimate := func(traceID string) {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/estimate",
			strings.NewReader(`{"origin":{"X":1,"Y":2},"dest":{"X":3,"Y":4},"depart_sec":600}`))
		if traceID != "" {
			req.Header.Set("X-Trace-Id", traceID)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("estimate = %d: %s", rec.Code, rec.Body)
		}
	}

	const traceID = "feedfacecafebeef"
	estimate(traceID)
	hist.Tick()
	advance(10 * time.Second)
	estimate("")
	hist.Tick()

	// History query over the route latency p99 carries the exemplar.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/debug/metrics/history?series=tte_http_request_seconds:p99", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("history query = %d: %s", rec.Code, rec.Body)
	}
	if !strings.HasPrefix(rec.Body.String(), `{"generated_at":"`) {
		t.Fatalf("history response not enveloped: %s", rec.Body)
	}
	var hres telemetry.QueryResult
	if err := json.Unmarshal(rec.Body.Bytes(), &hres); err != nil {
		t.Fatal(err)
	}
	if len(hres.Series) != 1 {
		t.Fatalf("p99 series = %+v", hres.Series)
	}
	var got string
	for _, ex := range hres.Series[0].Exemplars {
		if ex.TraceID == traceID {
			got = ex.TraceID
		}
	}
	if got == "" {
		t.Fatalf("exemplar with trace %s not in history response: %+v",
			traceID, hres.Series[0].Exemplars)
	}

	// ... and that trace ID resolves in /debug/traces.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?trace="+got, nil))
	var tres struct {
		Count  int `json:"count"`
		Traces []struct {
			TraceID string `json:"trace_id"`
			Route   string `json:"route"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tres); err != nil {
		t.Fatal(err)
	}
	if tres.Count != 1 || tres.Traces[0].TraceID != traceID || tres.Traces[0].Route != "/estimate" {
		t.Fatalf("trace lookup = %+v", tres)
	}

	// The exporter pushes the sampled history to the sink.
	exp.Collect()
	deadline := time.After(5 * time.Second)
	for exp.Stats().BatchesOK == 0 {
		select {
		case <-deadline:
			t.Fatalf("export never delivered: %+v", exp.Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
	exported := string(sink.all())
	for _, want := range []string{"resourceMetrics", "tte_http_requests_total", "tte_http_request_seconds:p99"} {
		if !strings.Contains(exported, want) {
			t.Fatalf("exported batches missing %q", want)
		}
	}

	// Dashboard JSON aggregates history + export state.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/dashboard?format=json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("dashboard json = %d: %s", rec.Code, rec.Body)
	}
	var dash struct {
		GeneratedAt time.Time              `json:"generated_at"`
		City        string                 `json:"city"`
		History     *telemetry.Stats       `json:"history"`
		Export      *telemetry.ExportStats `json:"export"`
		Sparks      []DashboardSpark       `json:"sparks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dash); err != nil {
		t.Fatal(err)
	}
	if dash.City != "telemetry-city" || dash.GeneratedAt.IsZero() {
		t.Fatalf("dashboard = %+v", dash)
	}
	if dash.History == nil || dash.History.Series == 0 {
		t.Fatalf("dashboard history stats = %+v", dash.History)
	}
	if dash.Export == nil || dash.Export.BatchesOK == 0 {
		t.Fatalf("dashboard export stats = %+v", dash.Export)
	}
	if len(dash.Sparks) == 0 {
		t.Fatalf("dashboard has no sparklines")
	}

	// HTML mode is self-contained: the data is embedded in the page.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/dashboard", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("dashboard html = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("dashboard Content-Type = %q", ct)
	}
	page := rec.Body.String()
	for _, want := range []string{"tteserve ops dashboard", "const DATA = {", "telemetry-city", "</html>"} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard page missing %q", want)
		}
	}
	if strings.Contains(page[strings.Index(page, "const DATA"):strings.Index(page, "const root")], "</script>") {
		t.Fatal("embedded JSON can break out of its script tag")
	}
}

func TestDashboardMethodAndErrors(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/dashboard", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST dashboard = %d", rec.Code)
	}
	var out struct {
		GeneratedAt time.Time `json:"generated_at"`
		Error       string    `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("error not enveloped JSON: %v: %s", err, rec.Body)
	}
	if out.Error == "" || out.GeneratedAt.IsZero() {
		t.Fatalf("enveloped error = %+v", out)
	}

	// Without History/Exporter the dashboard still renders the basics.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/dashboard?format=json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("minimal dashboard = %d: %s", rec.Code, rec.Body)
	}
	var dash map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &dash); err != nil {
		t.Fatal(err)
	}
	if dash["city"] != "test-city" {
		t.Fatalf("minimal dashboard = %v", dash)
	}
	if _, ok := dash["history"]; ok {
		t.Fatal("unwired history present in dashboard")
	}
}
