package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"deepod/internal/citysim"
	"deepod/internal/infer"
	"deepod/internal/mapmatch"
	"deepod/internal/obs"
	"deepod/internal/roadnet"
	"deepod/internal/traffic"
	"deepod/internal/traj"
)

// TestTrafficCongestionShiftEndToEnd drives the full live pipeline through
// the real HTTP surface: citysim vehicles cruise the city at night and then
// during the morning rush, their GPS probes stream through POST /probes
// into incremental map matching and the edge-speed store, and the served
// estimates must shift with the congestion — through the real-time feature
// channel alone, with zero model reloads. A stale departure must fall back
// to the frozen training-time prior.
func TestTrafficCongestionShiftEndToEnd(t *testing.T) {
	g, err := roadnet.GenerateCity(roadnet.SmallCity("live-e2e", 8))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := citysim.NewTraffic(g, 2*86400, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The frozen prior simulates training-time congestion: whatever the
	// depart time, it answers with the 03:00 (free-flowing) speed field.
	// Any estimate shift between night and rush must therefore come from
	// the live channel.
	gridder, err := citysim.NewSpeedGridder(sim, 250, 900)
	if err != nil {
		t.Fatal(err)
	}
	prior := func(float64) *traj.ExternalFeatures { return gridder.External(3 * 3600) }

	reg := obs.NewRegistry()
	matcher, err := mapmatch.New(g, mapmatch.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	store, err := traffic.NewStore(g, traffic.StoreConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ing, err := traffic.NewIngestor(matcher, store, traffic.IngestConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	fs, err := traffic.NewFeatureSource(g, store, prior, traffic.FeatureConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}

	// The model reads the mean positive cell speed from whatever feature
	// bundle reaches it: slower live speeds → longer estimates. This makes
	// the estimate a direct probe of which channel (live vs prior) fed the
	// encoder.
	snap := &infer.Snapshot{ID: "live-e2e", Estimate: func(_ context.Context, m *traj.MatchedOD) float64 {
		if m.External == nil || len(m.External.SpeedGrid) == 0 {
			return -1
		}
		var sum float64
		var n int
		for _, v := range m.External.SpeedGrid {
			if v > 0 {
				sum += v
				n++
			}
		}
		if n == 0 {
			return -1
		}
		return 1000 / (sum / float64(n)) // nominal 1 km trip
	}}
	eng, err := infer.New(infer.Config{
		Match: func(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
			return traj.MatchedOD{DepartSec: od.DepartSec}, nil
		},
		Snapshot: snap,
		Traffic:  fs,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	srv, err := New(Config{
		City:          "live-e2e",
		Infer:         eng.Do,
		Probes:        ing,
		TrafficStatus: ing.Status,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	ps, err := citysim.NewProbeStream(sim, citysim.ProbeConfig{Vehicles: 60, PeriodSec: 5, NoiseMeters: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	postWindow := func(fromSec, toSec float64) {
		t.Helper()
		w := ps.Window(fromSec, toSec)
		if len(w) == 0 {
			t.Fatalf("probe window [%v,%v) is empty", fromSec, toSec)
		}
		var sb strings.Builder
		enc := json.NewEncoder(&sb)
		for _, p := range w {
			if err := enc.Encode(traffic.Probe{Vehicle: p.Vehicle, X: p.Pos.X, Y: p.Pos.Y, T: p.T}); err != nil {
				t.Fatal(err)
			}
		}
		rec := postProbes(t, h, sb.String())
		if rec.Code != http.StatusOK {
			t.Fatalf("POST /probes = %d, body %s", rec.Code, rec.Body)
		}
		var resp ProbesResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Accepted == 0 {
			t.Fatalf("window [%v,%v): nothing accepted (%+v)", fromSec, toSec, resp)
		}
		// Drain synchronously so the store publishes before we estimate —
		// the test must not race the ingest workers.
		ing.Drain()
	}
	estimate := func(departSec float64) float64 {
		t.Helper()
		rec := postEstimate(t, h, `{"origin":{"X":100,"Y":100},"dest":{"X":900,"Y":900},"depart_sec":`+
			jsonNum(departSec)+`}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("estimate at %v = %d, body %s", departSec, rec.Code, rec.Body)
		}
		var resp EstimateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.TravelSeconds <= 0 {
			t.Fatalf("estimate at %v answered %v — the model saw no speed field", departSec, resp.TravelSeconds)
		}
		return resp.TravelSeconds
	}

	// Cold store: the estimate must come from the frozen prior.
	e0 := estimate(8.5 * 3600)

	// Night cruising (03:00, free flowing): the live channel takes over.
	postWindow(3*3600, 3*3600+300)
	eNight := estimate(3*3600 + 250)

	// Morning rush (08:30): same vehicles, congested city. The served
	// estimate must grow — no reload, no new model, just live features.
	postWindow(8.5*3600, 8.5*3600+300)
	eRush := estimate(8.5*3600 + 250)

	if eRush <= 1.05*eNight {
		t.Fatalf("rush estimate %v not >5%% above night estimate %v — congestion shift not flowing through the live channel", eRush, eNight)
	}
	if got := eng.Stats().Reloads; got != 0 {
		t.Fatalf("estimates shifted via %d reloads, want 0 — the live channel must not need one", got)
	}

	// A departure far from the live high-water mark is stale: fall back to
	// the frozen prior, i.e. exactly the cold estimate.
	eStale := estimate(20 * 3600)
	if math.Abs(eStale-e0) > 1e-9 {
		t.Fatalf("stale estimate %v != cold prior estimate %v", eStale, e0)
	}

	// /debug/traffic reports the warm pipeline.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traffic", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traffic = %d", rec.Code)
	}
	var status map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status["warm"] != true {
		t.Fatalf("/debug/traffic reports cold after ingesting two windows: %v", status)
	}
	st, ok := status["store"].(map[string]any)
	if !ok || st["edges_covered"].(float64) <= 0 {
		t.Fatalf("/debug/traffic store detail = %v", status["store"])
	}

	// /readyz carries the same detail without gating on it.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d", rec.Code)
	}
	var ready map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if _, ok := ready["traffic"]; !ok {
		t.Fatalf("/readyz missing traffic warm-state detail: %v", ready)
	}

	t.Logf("cold(prior)=%.1fs night(live)=%.1fs rush(live)=%.1fs stale(prior)=%.1fs", e0, eNight, eRush, eStale)
}

func jsonNum(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
