// Package obs is the stdlib-only observability substrate for the deepod
// serving and training pipelines: atomic counters, gauges and fixed-bucket
// histograms collected in a process-global Registry, a span/trace API for
// request-scoped diagnosis, a Prometheus-text exposition handler for
// GET /metrics, HTTP middleware that accounts requests by route and status
// class, a tail-sampling trace store served at GET /debug/traces, a
// slog.Handler decorator that stamps log lines with the trace ID, and a
// runtime stats sampler (goroutines, heap, GC) feeding registry gauges.
//
// Everything is safe for concurrent use. Metric mutation is lock-free
// (atomics); metric creation takes a registry lock once per (name, labels)
// identity, so hot paths should hold on to the returned *Counter /
// *Gauge / *Histogram rather than re-resolving them per event — though
// re-resolving is only a read-locked map lookup and is fine for
// request-rate paths.
//
// Spans serve two layers at once: every End records into the aggregate
// tte_span_seconds{span} histogram exactly as before, and when the context
// carries a Trace (started by the HTTP middleware or StartTrace) the span
// also joins that request's tree with its parent link, typed attributes
// and error status. On untraced contexts the attribute setters are no-ops,
// so instrumented code pays near-zero cost outside a traced request.
//
// Metric naming follows the Prometheus conventions: `tte_` prefix,
// `_total` suffix on counters, `_seconds` on duration histograms. The
// canonical families used across the repo:
//
//	tte_http_requests_total{route,code}   requests by route and status class
//	tte_http_request_seconds{route}       request latency histogram
//	tte_http_in_flight                    requests currently being served
//	tte_span_seconds{span}                pipeline stage durations
//	                                      (decode, match, encode, estimate,
//	                                      mapmatch.viterbi, ...)
//	tte_trace_completed_total             traces finished (kept or not)
//	tte_trace_retained_total{reason}      traces kept by tail sampling
//	tte_train_phase_seconds{phase}        offline-training phase durations
//	tte_train_epoch                       current training epoch
//	tte_train_samples_total               cumulative training samples
//	tte_go_*                              process health (see runtime.go)
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// defaultRegistry is the process-global registry used by the package-level
// helpers and, by convention, every instrumented package in this repo.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// SpanFamily is the histogram family package-level spans record into.
const SpanFamily = "tte_span_seconds"

type spanCtxKey struct{}

// Span measures one timed stage of a pipeline. A Span is started with
// StartSpan and finished exactly once with End; End records the duration
// into the registry histogram tte_span_seconds{span="<name>"} and, if a
// span logger is installed, emits one structured log line.
//
// When the context given to StartSpan carries a Trace, the span is also
// recorded into that trace's tree: Set* attach typed attributes and Fail
// marks the span (and trace) errored. On untraced spans those calls are
// no-ops, so the same instrumentation runs on every request at negligible
// cost and only traced requests pay for attribute storage.
type Span struct {
	name   string
	parent string
	start  time.Time
	hist   *Histogram
	done   atomic.Bool

	// Trace linkage. trace/index/parentIdx are written by Trace.register
	// inside StartSpan, before the span is visible to other goroutines;
	// the mutable fields below are guarded by mu.
	trace     *Trace
	index     int
	parentIdx int

	mu     sync.Mutex
	dur    time.Duration
	attrs  []Attr
	errMsg string
}

// StartSpan begins a named span recording into reg's tte_span_seconds
// family. The returned context carries the span so nested StartSpan calls
// link to their parent, and — when ctx carries a Trace — the span joins
// the trace's tree.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{
		name:      name,
		start:     time.Now(),
		hist:      r.Histogram(SpanFamily, DefBuckets, "span", name),
		parentIdx: -1,
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p, _ := ctx.Value(spanCtxKey{}).(*Span)
	if p != nil {
		s.parent = p.name
	}
	if t := TraceFrom(ctx); t != nil {
		t.register(s, p)
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartSpan is Registry.StartSpan on the default registry.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return defaultRegistry.StartSpan(ctx, name)
}

// End finishes the span, records its duration and returns it. Only the
// first End takes effect; later calls return the duration since start
// without recording again. Ending from a goroutine other than the starter
// is fine (the infer queue span is ended by the worker that picks the job
// up).
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if !s.done.CompareAndSwap(false, true) {
		return d
	}
	s.hist.Observe(d.Seconds())
	if s.trace != nil {
		// Traced spans carry the trace ID into the histogram as an
		// exemplar when recording is on; untraced spans (the common case)
		// never reach this branch, so the disabled path stays a nil check.
		if exemplarsOn.Load() {
			s.hist.recordExemplar(d.Seconds(), s.trace.id)
		}
		s.mu.Lock()
		s.dur = d
		s.mu.Unlock()
	}
	if f := spanLogger.Load(); f != nil {
		(*f)(s.name, s.parent, d)
	}
	return d
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// SetAttr attaches a typed attribute to the span. No-op on untraced spans,
// so hot-path instrumentation can set attributes unconditionally.
func (s *Span) SetAttr(key string, value any) {
	if s == nil || s.trace == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute (batch size, queue depth, status).
func (s *Span) SetInt(key string, v int) { s.SetAttr(key, v) }

// SetFloat attaches a float attribute (queue wait ms, cache age).
func (s *Span) SetFloat(key string, v float64) { s.SetAttr(key, v) }

// SetBool attaches a boolean attribute (cache hit).
func (s *Span) SetBool(key string, v bool) { s.SetAttr(key, v) }

// SetStr attaches a string attribute (shed reason, checkpoint hash).
func (s *Span) SetStr(key, v string) { s.SetAttr(key, v) }

// Fail records err on the span and flags the whole trace as errored so
// tail sampling always retains it. No-op for nil errors or untraced spans.
func (s *Span) Fail(err error) {
	if s == nil || err == nil || s.trace == nil {
		return
	}
	s.mu.Lock()
	if s.errMsg == "" {
		s.errMsg = err.Error()
	}
	s.mu.Unlock()
	s.trace.noteError()
}

// spanLogger, when set, receives every ended span.
var spanLogger atomic.Pointer[func(name, parent string, d time.Duration)]

// SetSpanLogger installs f to receive a line per ended span (nil disables).
// Intended for debug serving modes; the histogram is always recorded.
func SetSpanLogger(f func(name, parent string, d time.Duration)) {
	if f == nil {
		spanLogger.Store(nil)
		return
	}
	spanLogger.Store(&f)
}

// TimeCtx starts a timer on the default registry's tte_span_seconds family
// under ctx — preserving span parentage and trace membership — and returns
// the function that stops it, for one-line instrumentation:
//
//	defer obs.TimeCtx(ctx, "mapmatch.viterbi")()
func TimeCtx(ctx context.Context, name string) func() time.Duration {
	_, s := defaultRegistry.StartSpan(ctx, name)
	return s.End
}

// Time is TimeCtx without a context. The histogram is still recorded, but
// the span is an orphan: no parent link, never part of a trace. Prefer
// TimeCtx anywhere a context is available.
func Time(name string) func() time.Duration {
	return TimeCtx(context.Background(), name)
}
