// Package obs is the stdlib-only observability substrate for the deepod
// serving and training pipelines: atomic counters, gauges and fixed-bucket
// histograms collected in a process-global Registry, a lightweight
// span/timer API for tracing pipeline stages, a Prometheus-text exposition
// handler for GET /metrics, and HTTP middleware that accounts requests by
// route and status class.
//
// Everything is safe for concurrent use. Metric mutation is lock-free
// (atomics); metric creation takes a registry lock once per (name, labels)
// identity, so hot paths should hold on to the returned *Counter /
// *Gauge / *Histogram rather than re-resolving them per event — though
// re-resolving is only a read-locked map lookup and is fine for
// request-rate paths.
//
// Metric naming follows the Prometheus conventions: `tte_` prefix,
// `_total` suffix on counters, `_seconds` on duration histograms. The
// canonical families used across the repo:
//
//	tte_http_requests_total{route,code}   requests by route and status class
//	tte_http_request_seconds{route}       request latency histogram
//	tte_http_in_flight                    requests currently being served
//	tte_span_seconds{span}                pipeline stage durations
//	                                      (decode, match, encode, estimate,
//	                                      mapmatch.viterbi, ...)
//	tte_train_phase_seconds{phase}        offline-training phase durations
//	                                      (embed_pretrain, forward,
//	                                      backward, eval)
//	tte_train_epoch                       current training epoch
//	tte_train_samples_total               cumulative training samples
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// defaultRegistry is the process-global registry used by the package-level
// helpers and, by convention, every instrumented package in this repo.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// SpanFamily is the histogram family package-level spans record into.
const SpanFamily = "tte_span_seconds"

type spanCtxKey struct{}

// Span measures one timed stage of a pipeline. A Span is started with
// StartSpan and finished exactly once with End; End records the duration
// into the registry histogram tte_span_seconds{span="<name>"} and, if a
// span logger is installed, emits one structured log line.
type Span struct {
	name   string
	parent string
	start  time.Time
	hist   *Histogram
	done   atomic.Bool
}

// StartSpan begins a named span recording into reg's tte_span_seconds
// family. The returned context carries the span so nested StartSpan calls
// can report their parent in log lines.
func (r *Registry) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{
		name:  name,
		start: time.Now(),
		hist:  r.Histogram(SpanFamily, DefBuckets, "span", name),
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if p, ok := ctx.Value(spanCtxKey{}).(*Span); ok {
		s.parent = p.name
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartSpan is Registry.StartSpan on the default registry.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return defaultRegistry.StartSpan(ctx, name)
}

// End finishes the span, records its duration and returns it. Only the
// first End takes effect; later calls return the duration since start
// without recording again.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if !s.done.CompareAndSwap(false, true) {
		return d
	}
	s.hist.Observe(d.Seconds())
	if f := spanLogger.Load(); f != nil {
		(*f)(s.name, s.parent, d)
	}
	return d
}

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// spanLogger, when set, receives every ended span.
var spanLogger atomic.Pointer[func(name, parent string, d time.Duration)]

// SetSpanLogger installs f to receive a line per ended span (nil disables).
// Intended for debug serving modes; the histogram is always recorded.
func SetSpanLogger(f func(name, parent string, d time.Duration)) {
	if f == nil {
		spanLogger.Store(nil)
		return
	}
	spanLogger.Store(&f)
}

// Time starts a timer on the default registry's tte_span_seconds family
// and returns the function that stops it, for one-line instrumentation:
//
//	defer obs.Time("mapmatch.viterbi")()
func Time(name string) func() time.Duration {
	_, s := defaultRegistry.StartSpan(nil, name)
	return s.End
}
