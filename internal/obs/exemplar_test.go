package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestExemplarRecording(t *testing.T) {
	SetExemplars(true)
	defer SetExemplars(false)

	r := NewRegistry()
	h := r.Histogram("ex_seconds", []float64{0.1, 1, 10}, "route", "/estimate")
	h.ObserveExemplar(0.5, "aabbccdd00112233")
	h.ObserveExemplar(0.02, "deadbeefdeadbeef")
	h.Observe(5) // plain Observe never stores an exemplar

	ex := h.Exemplars()
	if len(ex) != 4 {
		t.Fatalf("exemplar slots = %d, want 4 (3 bounds + Inf)", len(ex))
	}
	if ex[0] == nil || ex[0].TraceID != "deadbeefdeadbeef" {
		t.Fatalf("bucket 0 exemplar = %+v, want trace deadbeefdeadbeef", ex[0])
	}
	if ex[1] == nil || ex[1].TraceID != "aabbccdd00112233" || ex[1].Value != 0.5 {
		t.Fatalf("bucket 1 exemplar = %+v, want trace aabbccdd00112233 value 0.5", ex[1])
	}
	if ex[2] != nil {
		t.Fatalf("bucket 2 exemplar = %+v, want nil (plain Observe)", ex[2])
	}
	if ex[1].Unix <= 0 {
		t.Fatalf("exemplar timestamp = %v, want > 0", ex[1].Unix)
	}

	// Last-write-wins within a bucket.
	h.ObserveExemplar(0.6, "ffffffffffffffff")
	if got := h.Exemplars()[1]; got.TraceID != "ffffffffffffffff" {
		t.Fatalf("bucket 1 exemplar after overwrite = %+v", got)
	}

	// Snapshot carries them through.
	var sample Sample
	for _, s := range r.Snapshot() {
		if s.Name == "ex_seconds" {
			sample = s
		}
	}
	if sample.Name == "" || len(sample.Exemplars) != 4 || sample.Exemplars[0] == nil {
		t.Fatalf("snapshot exemplars = %+v", sample.Exemplars)
	}
}

func TestExemplarDisabledStoresNothing(t *testing.T) {
	SetExemplars(false)
	r := NewRegistry()
	h := r.Histogram("ex_off_seconds", []float64{1})
	h.ObserveExemplar(0.5, "aabbccdd00112233")
	for i, e := range h.Exemplars() {
		if e != nil {
			t.Fatalf("bucket %d stored exemplar %+v while disabled", i, e)
		}
	}
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1 (Observe still records)", h.Count())
	}
}

func TestSpanEndRecordsExemplar(t *testing.T) {
	SetExemplars(true)
	defer SetExemplars(false)

	r := NewRegistry()
	ctx, _ := StartTrace(context.Background(), "0123456789abcdef", "/estimate")
	_, s := r.StartSpan(ctx, "estimate")
	s.End()

	ex := r.Histogram(SpanFamily, DefBuckets, "span", "estimate").Exemplars()
	var got *Exemplar
	for _, e := range ex {
		if e != nil {
			got = e
		}
	}
	if got == nil || got.TraceID != "0123456789abcdef" {
		t.Fatalf("span exemplar = %+v, want trace 0123456789abcdef", got)
	}

	// Untraced spans never store one.
	r2 := NewRegistry()
	_, s2 := r2.StartSpan(context.Background(), "estimate")
	s2.End()
	for _, e := range r2.Histogram(SpanFamily, DefBuckets, "span", "estimate").Exemplars() {
		if e != nil {
			t.Fatalf("untraced span stored exemplar %+v", e)
		}
	}
}

func TestMetricsHandlerExemplarExposition(t *testing.T) {
	SetExemplars(true)
	defer SetExemplars(false)

	r := NewRegistry()
	r.Histogram("ex_expo_seconds", []float64{1}, "route", "/x").ObserveExemplar(0.5, "0123456789abcdef")

	get := func(url, accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, req)
		return rec
	}

	// Plain scrape: classic content type, no exemplar syntax, no EOF.
	plain := get("/metrics", "")
	if ct := plain.Header().Get("Content-Type"); !strings.Contains(ct, "0.0.4") {
		t.Fatalf("plain content type = %q", ct)
	}
	if body := plain.Body.String(); strings.Contains(body, "# {") || strings.Contains(body, "# EOF") {
		t.Fatalf("plain exposition leaked OpenMetrics syntax:\n%s", body)
	}

	// ?exemplars=1: OpenMetrics content type, exemplar suffix on the
	// bucket line, EOF terminator.
	om := get("/metrics?exemplars=1", "")
	if ct := om.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("openmetrics content type = %q", ct)
	}
	body := om.Body.String()
	if !strings.Contains(body, `ex_expo_seconds_bucket{route="/x",le="1"} 1 # {trace_id="0123456789abcdef"} 0.5 `) {
		t.Fatalf("missing exemplar suffix in:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("missing # EOF terminator in:\n%s", body)
	}

	// Accept-header negotiation reaches the same flavour.
	neg := get("/metrics", "application/openmetrics-text; version=1.0.0")
	if !strings.Contains(neg.Body.String(), `# {trace_id=`) {
		t.Fatal("Accept negotiation did not enable exemplars")
	}
}

// TestTelemetryDisabledOverhead gates the per-observation cost the
// telemetry layer adds to the serve hot path when nothing is enabled: with
// exemplar recording off and no history sampler attached, the only added
// work at a span end or middleware latency observe is a trace nil check
// plus one atomic flag load. The bound catches a lock, map lookup or
// allocation sneaking into that branch.
func TestTelemetryDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate, skipped under the race detector")
	}
	SetExemplars(false)
	r := NewRegistry()
	_, s := r.StartSpan(context.Background(), "gate")
	defer s.End()
	h := r.Histogram("gate_seconds", DefBuckets)

	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The exact guard Span.End and the HTTP middleware run on
				// the disabled path.
				if s.trace != nil && exemplarsOn.Load() {
					h.recordExemplar(1, "unreachable")
				}
			}
		})
		if d := time.Duration(res.NsPerOp()); d < best {
			best = d
		}
	}
	const bound = 100 * time.Nanosecond
	if best > bound {
		t.Fatalf("disabled-telemetry overhead = %v per observation, want <= %v", best, bound)
	}
	t.Logf("disabled-telemetry overhead: %v per observation", best)
}
