package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTraceStoreHandlerDropAccounting: the /debug/traces envelope must say
// how much the reader is NOT seeing — traces tail sampling dropped and
// retained traces the ring has since overwritten — so an empty-looking
// trace list under load reads as "sampled away", not "no traffic".
func TestTraceStoreHandlerDropAccounting(t *testing.T) {
	ts := NewTraceStore(NewRegistry(), TraceStoreConfig{
		Capacity: 4, SlowestN: -1, SampleRate: 1, Seed: 1,
	})
	// 10 offered at rate 1 → 10 retained into a 4-slot ring → 6 overwritten.
	for i := 0; i < 10; i++ {
		_, tr := StartTrace(context.Background(), NewTraceID(), "/estimate")
		ts.Offer(tr, time.Millisecond)
	}
	// Sampling off: the next 5 complete but are dropped.
	ts.cfg.SampleRate = 0
	for i := 0; i < 5; i++ {
		_, tr := StartTrace(context.Background(), NewTraceID(), "/estimate")
		ts.Offer(tr, time.Millisecond)
	}

	rec := httptest.NewRecorder()
	ts.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d", rec.Code)
	}
	var body struct {
		Count       int    `json:"count"`
		TotalSeen   uint64 `json:"total_seen"`
		Retained    uint64 `json:"retained"`
		Dropped     uint64 `json:"dropped"`
		Overwritten int    `json:"overwritten"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON %q: %v", rec.Body, err)
	}
	if body.TotalSeen != 15 || body.Retained != 10 || body.Dropped != 5 {
		t.Fatalf("envelope = %+v, want total_seen 15 / retained 10 / dropped 5", body)
	}
	if body.Overwritten != 6 || body.Count != 4 {
		t.Fatalf("envelope = %+v, want overwritten 6 with 4 listed", body)
	}
	// Legacy field stays for existing dashboards.
	if !strings.Contains(rec.Body.String(), `"completed"`) {
		t.Fatal("completed field dropped from the envelope")
	}
}
