package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Sample is one metric child captured by Snapshot.
type Sample struct {
	Name   string
	Kind   string   // "counter" | "gauge" | "histogram"
	Labels []string // alternating key, value pairs, sorted by key
	// Value holds the counter or gauge value (counters as float64).
	Value float64
	// Histogram fields (Kind == "histogram"); BucketCounts is
	// non-cumulative with the +Inf bucket last.
	BucketUppers []float64
	BucketCounts []uint64
	Count        uint64
	Sum          float64
	// Exemplars holds the latest exemplar per bucket, indexed like
	// BucketCounts (+Inf last); entries are nil for buckets without one.
	// Populated only when exemplar recording has stored any (exemplar.go).
	Exemplars []*Exemplar
}

// Label returns the sample's value for the label key, or "".
func (s Sample) Label(key string) string {
	for i := 0; i+1 < len(s.Labels); i += 2 {
		if s.Labels[i] == key {
			return s.Labels[i+1]
		}
	}
	return ""
}

// Quantile estimates the q-quantile of a histogram sample by linear
// interpolation within the bucket containing it, mirroring
// Histogram.Quantile but working on captured snapshot data — the history
// sampler derives p50/p99 series from Snapshot output without re-touching
// the live histogram. Returns NaN for empty or non-histogram samples.
func (s Sample) Quantile(q float64) float64 {
	if s.Kind != "histogram" || s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.BucketCounts {
		if i >= len(s.BucketUppers) {
			break // +Inf bucket: fall through to the clamp below
		}
		n := float64(c)
		if cum+n >= rank && n > 0 {
			lower := 0.0
			if i > 0 {
				lower = s.BucketUppers[i-1]
			}
			frac := (rank - cum) / n
			return lower + frac*(s.BucketUppers[i]-lower)
		}
		cum += n
	}
	if len(s.BucketUppers) == 0 {
		return math.NaN()
	}
	return s.BucketUppers[len(s.BucketUppers)-1]
}

// Snapshot captures every metric in the registry, sorted by family name
// then label identity. It is the programmatic counterpart of the /metrics
// exposition (ttetrain's phase breakdown reads it).
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []Sample
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := Sample{Name: f.name, Kind: f.kind, Labels: sortedPairs(f.labels[k])}
			switch m := f.children[k].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.BucketUppers, s.BucketCounts = m.Buckets()
				s.Count = m.Count()
				s.Sum = m.Sum()
				for i, e := range m.Exemplars() {
					if e != nil {
						if s.Exemplars == nil {
							s.Exemplars = make([]*Exemplar, len(s.BucketCounts))
						}
						s.Exemplars[i] = e
					}
				}
			}
			out = append(out, s)
		}
		f.mu.RUnlock()
	}
	return out
}

func sortedPairs(labels []string) []string {
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	out := make([]string, 0, 2*n)
	for _, i := range idx {
		out = append(out, labels[2*i], labels[2*i+1])
	}
	return out
}

// Handler returns the GET /metrics handler exposing the registry in the
// Prometheus text format (version 0.0.4), hand-rolled: one # TYPE (and
// optional # HELP) comment per family, then one line per sample, with
// histograms expanded into cumulative _bucket{le=...}, _sum and _count.
//
// With ?exemplars=1 (or an Accept header requesting openmetrics-text) the
// response switches to the OpenMetrics flavour: histogram _bucket lines
// gain `# {trace_id="..."} value timestamp` exemplar suffixes and the
// stream is terminated with # EOF. Plain scrapes never see exemplar
// syntax, so Prometheus 0.0.4 parsers stay happy.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		openMetrics := req.URL.Query().Get("exemplars") == "1" ||
			strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text")
		if openMetrics {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		}
		if req.Method == http.MethodHead {
			return
		}
		var b strings.Builder
		r.writeText(&b, openMetrics)
		if openMetrics {
			b.WriteString("# EOF\n")
		}
		_, _ = w.Write([]byte(b.String()))
	})
}

func (r *Registry) writeText(b *strings.Builder, exemplars bool) {
	samples := r.Snapshot()
	// Group consecutive samples by family for the TYPE/HELP headers.
	helps := map[string]string{}
	r.mu.RLock()
	for name, f := range r.families {
		f.mu.RLock()
		if f.help != "" {
			helps[name] = f.help
		}
		f.mu.RUnlock()
	}
	r.mu.RUnlock()

	last := ""
	for _, s := range samples {
		if s.Name != last {
			last = s.Name
			if h := helps[s.Name]; h != "" {
				fmt.Fprintf(b, "# HELP %s %s\n", s.Name, strings.ReplaceAll(h, "\n", " "))
			}
			kind := s.Kind
			if kind == "" {
				kind = "untyped"
			}
			fmt.Fprintf(b, "# TYPE %s %s\n", s.Name, kind)
		}
		switch s.Kind {
		case "histogram":
			var cum uint64
			for i, c := range s.BucketCounts {
				cum += c
				le := "+Inf"
				if i < len(s.BucketUppers) {
					le = formatFloat(s.BucketUppers[i])
				}
				fmt.Fprintf(b, "%s_bucket%s %d", s.Name, labelString(s.Labels, "le", le), cum)
				if exemplars && i < len(s.Exemplars) && s.Exemplars[i] != nil {
					e := s.Exemplars[i]
					fmt.Fprintf(b, " # {trace_id=\"%s\"} %s %.3f",
						escapeLabel(e.TraceID), formatFloat(e.Value), e.Unix)
				}
				b.WriteByte('\n')
			}
			fmt.Fprintf(b, "%s_sum%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Sum))
			fmt.Fprintf(b, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count)
		default:
			fmt.Fprintf(b, "%s%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Value))
		}
	}
}

// labelString renders {k="v",...} from sorted pairs plus optional extras,
// or "" when there are no labels at all.
func labelString(pairs []string, extra ...string) string {
	if len(pairs) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for i := 0; i+1 < len(pairs); i += 2 {
		emit(pairs[i], pairs[i+1])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
