package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Sample is one metric child captured by Snapshot.
type Sample struct {
	Name   string
	Kind   string   // "counter" | "gauge" | "histogram"
	Labels []string // alternating key, value pairs, sorted by key
	// Value holds the counter or gauge value (counters as float64).
	Value float64
	// Histogram fields (Kind == "histogram"); BucketCounts is
	// non-cumulative with the +Inf bucket last.
	BucketUppers []float64
	BucketCounts []uint64
	Count        uint64
	Sum          float64
}

// Label returns the sample's value for the label key, or "".
func (s Sample) Label(key string) string {
	for i := 0; i+1 < len(s.Labels); i += 2 {
		if s.Labels[i] == key {
			return s.Labels[i+1]
		}
	}
	return ""
}

// Snapshot captures every metric in the registry, sorted by family name
// then label identity. It is the programmatic counterpart of the /metrics
// exposition (ttetrain's phase breakdown reads it).
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []Sample
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := Sample{Name: f.name, Kind: f.kind, Labels: sortedPairs(f.labels[k])}
			switch m := f.children[k].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.BucketUppers, s.BucketCounts = m.Buckets()
				s.Count = m.Count()
				s.Sum = m.Sum()
			}
			out = append(out, s)
		}
		f.mu.RUnlock()
	}
	return out
}

func sortedPairs(labels []string) []string {
	n := len(labels) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[2*idx[a]] < labels[2*idx[b]] })
	out := make([]string, 0, 2*n)
	for _, i := range idx {
		out = append(out, labels[2*i], labels[2*i+1])
	}
	return out
}

// Handler returns the GET /metrics handler exposing the registry in the
// Prometheus text format (version 0.0.4), hand-rolled: one # TYPE (and
// optional # HELP) comment per family, then one line per sample, with
// histograms expanded into cumulative _bucket{le=...}, _sum and _count.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		var b strings.Builder
		r.writeText(&b)
		_, _ = w.Write([]byte(b.String()))
	})
}

func (r *Registry) writeText(b *strings.Builder) {
	samples := r.Snapshot()
	// Group consecutive samples by family for the TYPE/HELP headers.
	helps := map[string]string{}
	r.mu.RLock()
	for name, f := range r.families {
		f.mu.RLock()
		if f.help != "" {
			helps[name] = f.help
		}
		f.mu.RUnlock()
	}
	r.mu.RUnlock()

	last := ""
	for _, s := range samples {
		if s.Name != last {
			last = s.Name
			if h := helps[s.Name]; h != "" {
				fmt.Fprintf(b, "# HELP %s %s\n", s.Name, strings.ReplaceAll(h, "\n", " "))
			}
			kind := s.Kind
			if kind == "" {
				kind = "untyped"
			}
			fmt.Fprintf(b, "# TYPE %s %s\n", s.Name, kind)
		}
		switch s.Kind {
		case "histogram":
			var cum uint64
			for i, c := range s.BucketCounts {
				cum += c
				le := "+Inf"
				if i < len(s.BucketUppers) {
					le = formatFloat(s.BucketUppers[i])
				}
				fmt.Fprintf(b, "%s_bucket%s %d\n", s.Name, labelString(s.Labels, "le", le), cum)
			}
			fmt.Fprintf(b, "%s_sum%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Sum))
			fmt.Fprintf(b, "%s_count%s %d\n", s.Name, labelString(s.Labels), s.Count)
		default:
			fmt.Fprintf(b, "%s%s %s\n", s.Name, labelString(s.Labels), formatFloat(s.Value))
		}
	}
}

// labelString renders {k="v",...} from sorted pairs plus optional extras,
// or "" when there are no labels at all.
func labelString(pairs []string, extra ...string) string {
	if len(pairs) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for i := 0; i+1 < len(pairs); i += 2 {
		emit(pairs[i], pairs[i+1])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
