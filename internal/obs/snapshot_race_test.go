package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryRegisterWhileSnapshot races brand-new family and child
// registration against Snapshot readers. This is exactly the telemetry
// history sampler's access pattern: its ticker calls Snapshot on a fixed
// interval while request goroutines are still minting new (name, labels)
// identities — first requests on a cold route, a hot-reload registering
// fresh families — so creation must never tear a snapshot. Run under -race
// (scripts/check.sh does).
func TestRegistryRegisterWhileSnapshot(t *testing.T) {
	r := NewRegistry()
	const (
		writers  = 4
		families = 40
		children = 8
	)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for f := 0; f < families; f++ {
				// Distinct names per writer: every iteration registers a
				// family Snapshot has never seen.
				name := fmt.Sprintf("race_w%d_f%d_total", w, f)
				for c := 0; c < children; c++ {
					r.Counter(name, "child", fmt.Sprint(c)).Add(1)
				}
				r.Gauge(fmt.Sprintf("race_w%d_f%d", w, f)).Set(float64(f))
				h := r.Histogram(fmt.Sprintf("race_w%d_f%d_seconds", w, f), []float64{0.1, 1})
				h.ObserveExemplar(0.5, "0123456789abcdef")
				r.Help(name, "registered mid-snapshot")
			}
		}(w)
	}

	var readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range r.Snapshot() {
					if s.Name == "" {
						t.Error("snapshot produced a nameless sample")
						return
					}
				}
			}
		}()
	}

	close(start)
	wg.Wait()
	close(stop)
	readers.Wait()

	// After the dust settles every family registered must be visible.
	got := make(map[string]bool)
	for _, s := range r.Snapshot() {
		got[s.Name] = true
	}
	for w := 0; w < writers; w++ {
		for f := 0; f < families; f++ {
			name := fmt.Sprintf("race_w%d_f%d_total", w, f)
			if !got[name] {
				t.Fatalf("family %s missing from final snapshot", name)
			}
		}
	}
}
