package obs

import (
	"runtime"
	"runtime/debug"
	"sort"
)

// BuildFields resolves the running binary's identity from the embedded
// build info: the Go toolchain, main module path (and version when stamped)
// and the VCS revision/time/dirty flag when built from a checkout. The same
// fields back both the tte_build_info gauge and GET /version, so the metric
// a dashboard joins on and the endpoint an operator curls never disagree.
func BuildFields() map[string]string {
	fields := map[string]string{"go": runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return fields
	}
	fields["module"] = bi.Main.Path
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		fields["module_version"] = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			fields["vcs_revision"] = kv.Value
		case "vcs.time":
			fields["vcs_time"] = kv.Value
		case "vcs.modified":
			fields["vcs_modified"] = kv.Value
		}
	}
	return fields
}

// RegisterBuildInfo publishes the Prometheus build-info idiom: a constant
// gauge
//
//	tte_build_info{go="go1.x", module="deepod", vcs_revision="...", ...} 1
//
// whose value carries no information — the labels do. Dashboards join it
// against rate metrics to split any panel by binary version, and a deploy
// shows up as one label set going 0→1 while the old one disappears. extra
// appends deployment-specific label pairs (for example "model", <checkpoint
// SHA>). The merged field map is returned for reuse in /version payloads.
func RegisterBuildInfo(r *Registry, extra ...string) map[string]string {
	if r == nil {
		r = Default()
	}
	fields := BuildFields()
	for i := 0; i+1 < len(extra); i += 2 {
		fields[extra[i]] = extra[i+1]
	}
	labels := make([]string, 0, 2*len(fields))
	// Registries key series by their label strings; emit in sorted order so
	// repeated registration is idempotent.
	for _, k := range sortedKeys(fields) {
		labels = append(labels, k, fields[k])
	}
	r.Help("tte_build_info", "Constant 1; the labels identify the running build and model.")
	r.Gauge("tte_build_info", labels...).Set(1)
	return fields
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
