package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Logf is a printf-style logging hook (log.Printf-compatible).
type Logf func(format string, args ...any)

// TraceHeader is the request/response header carrying the trace ID. An
// incoming value passing ParseTraceID is adopted (so callers and upstream
// proxies can stitch traces together); otherwise a fresh ID is minted.
// The ID is always echoed on the response.
const TraceHeader = "X-Trace-Id"

// Middleware instruments HTTP handlers with per-route metrics and,
// optionally, request-scoped tracing and structured logging. The zero
// value plus a Registry reproduces the classic Instrument behaviour.
type Middleware struct {
	// Registry receives the request metrics (nil uses the default).
	Registry *Registry
	// Logf, when set, emits the legacy one-line request log.
	Logf Logf
	// Logger, when set, emits structured request logs: 5xx at Error and
	// 4xx at Warn on every occurrence, 2xx/3xx at Info sampled by
	// AccessLogEvery. Lines carry trace_id when Logger's handler is (or
	// wraps) a TraceHandler.
	Logger *slog.Logger
	// AccessLogEvery samples success access logs: only every Nth 2xx/3xx
	// request per route is logged at Info (<=1 logs all).
	AccessLogEvery int
	// Traces enables tracing: each request gets a trace (ID from
	// X-Trace-Id or generated, echoed in the response), a root span named
	// after the route, and the finished trace is offered to the store.
	Traces *TraceStore
}

// Wrap instruments h with per-route accounting against the registry:
//
//	tte_http_requests_total{route,code}  counter (code is the status class)
//	tte_http_request_seconds{route}      latency histogram
//	tte_http_in_flight                   gauge across all instrumented routes
//
// plus the tracing and logging configured on the Middleware. route should
// be the mux pattern the handler is registered under — using it (rather
// than the request path) keeps label cardinality bounded.
func (mw Middleware) Wrap(route string, h http.Handler) http.Handler {
	reg := mw.Registry
	if reg == nil {
		reg = Default()
	}
	reg.Help("tte_http_requests_total", "HTTP requests by route and status class.")
	reg.Help("tte_http_request_seconds", "HTTP request latency in seconds by route.")
	reg.Help("tte_http_in_flight", "HTTP requests currently being served.")
	latency := reg.Histogram("tte_http_request_seconds", DefBuckets, "route", route)
	inFlight := reg.Gauge("tte_http_in_flight")
	var accessN atomic.Uint64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Inc()
		defer inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w}

		req := r
		var tr *Trace
		var root *Span
		if mw.Traces != nil {
			id, ok := ParseTraceID(r.Header.Get(TraceHeader))
			if !ok {
				id = NewTraceID()
			}
			w.Header().Set(TraceHeader, string(id))
			ctx, t := StartTrace(r.Context(), id, route)
			ctx, root = reg.StartSpan(ctx, route)
			tr = t
			req = r.WithContext(ctx)
		}

		h.ServeHTTP(sw, req)

		d := time.Since(start)
		latency.Observe(d.Seconds())
		if tr != nil && exemplarsOn.Load() {
			// Traced requests stamp the route-latency bucket with their
			// trace ID; untraced requests never take this branch.
			latency.recordExemplar(d.Seconds(), tr.id)
		}
		code := sw.Status()
		reg.Counter("tte_http_requests_total", "route", route, "code", statusClass(code)).Inc()
		if root != nil {
			root.SetInt("status", code)
			root.SetInt("bytes", int(sw.bytes))
			if code >= 500 {
				root.Fail(fmt.Errorf("HTTP %d", code))
			}
			rd := root.End()
			mw.Traces.Offer(tr, rd)
		}
		if mw.Logf != nil {
			mw.Logf("%s %s -> %d (%dB) in %s", r.Method, route, code, sw.bytes, d.Round(time.Microsecond))
		}
		if mw.Logger != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.Int("status", code),
				slog.Int64("bytes", sw.bytes),
				slog.Float64("dur_ms", float64(d)/float64(time.Millisecond)),
			}
			ctx := req.Context()
			switch {
			case code >= 500:
				mw.Logger.LogAttrs(ctx, slog.LevelError, "request", attrs...)
			case code >= 400:
				mw.Logger.LogAttrs(ctx, slog.LevelWarn, "request", attrs...)
			default:
				if n := mw.AccessLogEvery; n <= 1 || accessN.Add(1)%uint64(n) == 1 {
					mw.Logger.LogAttrs(ctx, slog.LevelInfo, "request", attrs...)
				}
			}
		}
	})
}

// Instrument wraps h with per-route accounting and an optional legacy log
// line — Middleware.Wrap without tracing or structured logging, kept for
// call sites that predate the trace layer.
func Instrument(reg *Registry, route string, logf Logf, h http.Handler) http.Handler {
	return Middleware{Registry: reg, Logf: logf}.Wrap(route, h)
}

// statusWriter captures the status code and body size written downstream.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Status returns the response status, defaulting to 200 when the handler
// never called WriteHeader.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// statusClass maps 204 -> "2xx", 404 -> "4xx", etc.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}
