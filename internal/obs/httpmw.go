package obs

import (
	"net/http"
	"strconv"
	"time"
)

// Logf is a printf-style logging hook (log.Printf-compatible).
type Logf func(format string, args ...any)

// Instrument wraps h with per-route accounting against reg:
//
//	tte_http_requests_total{route,code}  counter (code is the status class)
//	tte_http_request_seconds{route}      latency histogram
//	tte_http_in_flight                   gauge across all instrumented routes
//
// and, when logf is non-nil, one request log line with method, route,
// status, bytes written and duration. route should be the mux pattern the
// handler is registered under — using it (rather than the request path)
// keeps label cardinality bounded.
func Instrument(reg *Registry, route string, logf Logf, h http.Handler) http.Handler {
	if reg == nil {
		reg = Default()
	}
	reg.Help("tte_http_requests_total", "HTTP requests by route and status class.")
	reg.Help("tte_http_request_seconds", "HTTP request latency in seconds by route.")
	reg.Help("tte_http_in_flight", "HTTP requests currently being served.")
	latency := reg.Histogram("tte_http_request_seconds", DefBuckets, "route", route)
	inFlight := reg.Gauge("tte_http_in_flight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Inc()
		defer inFlight.Dec()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		d := time.Since(start)
		latency.Observe(d.Seconds())
		reg.Counter("tte_http_requests_total", "route", route, "code", statusClass(sw.Status())).Inc()
		if logf != nil {
			logf("%s %s -> %d (%dB) in %s", r.Method, route, sw.Status(), sw.bytes, d.Round(time.Microsecond))
		}
	})
}

// statusWriter captures the status code and body size written downstream.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Status returns the response status, defaulting to 200 when the handler
// never called WriteHeader.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// statusClass maps 204 -> "2xx", 404 -> "4xx", etc.
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}
