package obs

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestConcurrentRegistry hammers metric creation and mutation from many
// goroutines while the exposition handler scrapes concurrently. Run with
// -race (scripts/check.sh does) to prove the registry is lock-correct:
// creation races, child-map reads during writes, and scrape-during-update
// are all exercised.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	routes := []string{"/a", "/b", "/c"}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				route := routes[(w+i)%len(routes)]
				// Re-resolve every iteration on purpose: this is the
				// worst-case path that mixes map reads with creation.
				r.Counter("stress_total", "route", route).Add(1)
				g := r.Gauge("stress_gauge")
				g.Inc()
				r.Histogram("stress_seconds", DefBuckets, "route", route).Observe(float64(i) / float64(iters))
				g.Dec()
				if i%64 == 0 {
					_, s := r.StartSpan(nil, "stress")
					s.End()
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("scrape status %d", rec.Code)
					return
				}
				for _, s := range r.Snapshot() {
					_ = s.Label("route")
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	var total uint64
	for _, route := range routes {
		total += r.Counter("stress_total", "route", route).Value()
	}
	if want := uint64(workers * iters); total != want {
		t.Fatalf("lost counter increments: %d != %d", total, want)
	}
	var hist uint64
	for _, route := range routes {
		hist += r.Histogram("stress_seconds", DefBuckets, "route", route).Count()
	}
	if want := uint64(workers * iters); hist != want {
		t.Fatalf("lost histogram observations: %d != %d", hist, want)
	}
	if v := r.Gauge("stress_gauge").Value(); v != 0 {
		t.Fatalf("gauge should settle at 0, got %v", v)
	}
}
