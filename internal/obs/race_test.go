package obs

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRegistry hammers metric creation and mutation from many
// goroutines while the exposition handler scrapes concurrently. Run with
// -race (scripts/check.sh does) to prove the registry is lock-correct:
// creation races, child-map reads during writes, and scrape-during-update
// are all exercised.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 2000
	)
	routes := []string{"/a", "/b", "/c"}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				route := routes[(w+i)%len(routes)]
				// Re-resolve every iteration on purpose: this is the
				// worst-case path that mixes map reads with creation.
				r.Counter("stress_total", "route", route).Add(1)
				g := r.Gauge("stress_gauge")
				g.Inc()
				r.Histogram("stress_seconds", DefBuckets, "route", route).Observe(float64(i) / float64(iters))
				g.Dec()
				if i%64 == 0 {
					_, s := r.StartSpan(nil, "stress")
					s.End()
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("scrape status %d", rec.Code)
					return
				}
				for _, s := range r.Snapshot() {
					_ = s.Label("route")
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	var total uint64
	for _, route := range routes {
		total += r.Counter("stress_total", "route", route).Value()
	}
	if want := uint64(workers * iters); total != want {
		t.Fatalf("lost counter increments: %d != %d", total, want)
	}
	var hist uint64
	for _, route := range routes {
		hist += r.Histogram("stress_seconds", DefBuckets, "route", route).Count()
	}
	if want := uint64(workers * iters); hist != want {
		t.Fatalf("lost histogram observations: %d != %d", hist, want)
	}
	if v := r.Gauge("stress_gauge").Value(); v != 0 {
		t.Fatalf("gauge should settle at 0, got %v", v)
	}
}

// TestConcurrentTracing hammers the trace layer the way the serving path
// does: many request goroutines each building a span tree (with a second
// goroutine adding spans to the same trace, as engine workers do), offering
// finished traces to a shared store, while readers scrape /debug/traces
// concurrently. Run with -race.
func TestConcurrentTracing(t *testing.T) {
	r := NewRegistry()
	ts := NewTraceStore(r, TraceStoreConfig{Capacity: 64, SlowestN: 4, Window: time.Second, SampleRate: 0.5, Seed: 7})
	const (
		workers = 8
		iters   = 300
	)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, tr := StartTrace(context.Background(), TraceID(fmt.Sprintf("w%d-%d", w, i)), "/estimate")
				rctx, root := r.StartSpan(ctx, "/estimate")
				root.SetInt("iter", i)

				// A "worker" goroutine contributes spans to the same trace,
				// like the infer engine's batch path.
				done := make(chan struct{})
				go func() {
					defer close(done)
					bctx, bspan := r.StartSpan(rctx, "infer.batch")
					bspan.SetInt("batch_size", 1)
					_, mspan := r.StartSpan(bctx, "infer.model")
					mspan.End()
					bspan.End()
				}()
				<-done
				if i%7 == 0 {
					root.Fail(fmt.Errorf("iter %d", i))
				}
				ts.Offer(tr, root.End())
			}
		}(w)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			h := ts.Handler()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?limit=16", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("trace scrape status %d", rec.Code)
					return
				}
				ts.Traces(TraceFilter{ErrorOnly: true})
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	if got := r.Counter("tte_trace_completed_total").Value(); got != workers*iters {
		t.Fatalf("completed = %d, want %d", got, workers*iters)
	}
	if got := r.Counter("tte_trace_retained_total", "reason", "error").Value(); got == 0 {
		t.Fatal("no error traces retained")
	}
}
