package obs

import (
	"runtime"
	"sync"
	"time"
)

// CollectRuntime samples Go process health into reg's gauges (nil uses the
// default registry) so /metrics shows process health next to request
// health:
//
//	tte_go_goroutines               live goroutines
//	tte_go_heap_alloc_bytes         live heap bytes
//	tte_go_heap_sys_bytes           heap bytes obtained from the OS
//	tte_go_heap_objects             live heap objects
//	tte_go_gc_runs_total            completed GC cycles
//	tte_go_gc_pause_seconds_total   cumulative stop-the-world pause time
//	tte_go_gc_last_pause_seconds    most recent GC pause
//
// ReadMemStats stops the world briefly (microseconds), so this is meant to
// run on a period (see StartRuntimeStats), not per request.
func CollectRuntime(reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("tte_go_goroutines").Set(float64(runtime.NumGoroutine()))
	reg.Gauge("tte_go_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	reg.Gauge("tte_go_heap_sys_bytes").Set(float64(ms.HeapSys))
	reg.Gauge("tte_go_heap_objects").Set(float64(ms.HeapObjects))
	reg.Gauge("tte_go_gc_runs_total").Set(float64(ms.NumGC))
	reg.Gauge("tte_go_gc_pause_seconds_total").Set(float64(ms.PauseTotalNs) / 1e9)
	if ms.NumGC > 0 {
		last := ms.PauseNs[(ms.NumGC+255)%256]
		reg.Gauge("tte_go_gc_last_pause_seconds").Set(float64(last) / 1e9)
	}
}

// StartRuntimeStats samples CollectRuntime into reg immediately and then
// every interval (default 10s) until the returned stop function is called.
// stop is idempotent.
func StartRuntimeStats(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		reg = Default()
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	reg.Help("tte_go_goroutines", "Live goroutines.")
	reg.Help("tte_go_heap_alloc_bytes", "Live heap bytes.")
	reg.Help("tte_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause seconds.")
	CollectRuntime(reg)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				CollectRuntime(reg)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
