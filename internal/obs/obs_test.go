package obs

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "route", "/a")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same identity returns the same child; label order must not matter.
	if r.Counter("reqs_total", "route", "/a") != c {
		t.Fatal("counter identity not stable")
	}
	c2 := r.Counter("multi_total", "a", "1", "b", "2")
	if r.Counter("multi_total", "b", "2", "a", "1") != c2 {
		t.Fatal("label order changed counter identity")
	}

	g := r.Gauge("in_flight")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.1, 0.2, 0.5, 1})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	for _, v := range []float64{0.05, 0.15, 0.15, 0.3, 0.7, 2} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-3.35) > 1e-12 {
		t.Fatalf("sum = %v", h.Sum())
	}
	uppers, counts := h.Buckets()
	wantCounts := []uint64{1, 2, 1, 1, 1} // last is +Inf
	if len(uppers) != 4 || len(counts) != 5 {
		t.Fatalf("buckets %v %v", uppers, counts)
	}
	for i, w := range wantCounts {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, counts[i], w, counts)
		}
	}
	// Median: rank 3 lands in the (0.1, 0.2] bucket.
	if q := h.Quantile(0.5); q <= 0.1 || q > 0.2 {
		t.Fatalf("p50 = %v, want in (0.1, 0.2]", q)
	}
	// p99 falls in the +Inf bucket and clamps to the top finite bound.
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %v, want clamp to 1", q)
	}
}

func TestSpanRecordsHistogram(t *testing.T) {
	r := NewRegistry()
	var logged []string
	SetSpanLogger(func(name, parent string, d time.Duration) {
		logged = append(logged, parent+"/"+name)
	})
	defer SetSpanLogger(nil)

	ctx, outer := r.StartSpan(context.Background(), "outer")
	_, inner := r.StartSpan(ctx, "inner")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()
	outer.End() // second End must not double-count

	h := r.Histogram(SpanFamily, DefBuckets, "span", "outer")
	if h.Count() != 1 {
		t.Fatalf("outer span recorded %d times", h.Count())
	}
	if h.Sum() <= 0 {
		t.Fatal("span duration not recorded")
	}
	if len(logged) != 2 || logged[0] != "outer/inner" || logged[1] != "/outer" {
		t.Fatalf("span log = %v", logged)
	}
}

func TestTimeHelper(t *testing.T) {
	before := Default().Histogram(SpanFamily, DefBuckets, "span", "obs_test.timer").Count()
	stop := Time("obs_test.timer")
	if d := stop(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	after := Default().Histogram(SpanFamily, DefBuckets, "span", "obs_test.timer").Count()
	if after != before+1 {
		t.Fatalf("timer count %d -> %d", before, after)
	}
}

// expoLine matches one non-comment exposition line:
// name or name{k="v",...}, a space, and a float/int value.
var expoLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Help("reqs_total", "Requests\nwith a newline in help.")
	r.Counter("reqs_total", "route", "/estimate", "code", "2xx").Add(3)
	r.Gauge("temp").Set(-1.5)
	h := r.Histogram("lat_seconds", []float64{0.1, 1}, "route", `/weird"path\`)
	h.Observe(0.05)
	h.Observe(5)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var body strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	text := body.String()

	types := 0
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			if strings.Contains(line, "\n") {
				t.Fatalf("help line %d contains newline", i)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			types++
			continue
		}
		if !expoLine.MatchString(line) {
			t.Fatalf("line %d does not parse: %q", i, line)
		}
	}
	if types != 3 {
		t.Fatalf("want 3 TYPE headers, got %d in:\n%s", types, text)
	}
	for _, want := range []string{
		`reqs_total{code="2xx",route="/estimate"} 3`,
		`temp -1.5`,
		`lat_seconds_bucket{route="/weird\"path\\",le="+Inf"} 2`,
		`lat_seconds_count{route="/weird\"path\\"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Histogram buckets must be cumulative.
	if !strings.Contains(text, `le="1"} 1`) {
		t.Fatalf("cumulative bucket missing:\n%s", text)
	}
	// POST must be rejected.
	pr, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d", pr.StatusCode)
	}
}

func TestInstrumentMiddleware(t *testing.T) {
	r := NewRegistry()
	var lines []string
	h := Instrument(r, "/ok", func(f string, a ...any) {
		lines = append(lines, f)
	}, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("hi"))
	}))
	bad := Instrument(r, "/bad", nil, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
	}
	rec := httptest.NewRecorder()
	bad.ServeHTTP(rec, httptest.NewRequest("GET", "/bad", nil))

	if got := r.Counter("tte_http_requests_total", "route", "/ok", "code", "2xx").Value(); got != 3 {
		t.Fatalf("2xx count = %d", got)
	}
	if got := r.Counter("tte_http_requests_total", "route", "/bad", "code", "4xx").Value(); got != 1 {
		t.Fatalf("4xx count = %d", got)
	}
	if got := r.Histogram("tte_http_request_seconds", DefBuckets, "route", "/ok").Count(); got != 3 {
		t.Fatalf("latency observations = %d", got)
	}
	if v := r.Gauge("tte_http_in_flight").Value(); v != 0 {
		t.Fatalf("in-flight after requests = %v", v)
	}
	if len(lines) != 3 {
		t.Fatalf("request log lines = %d", len(lines))
	}
}
