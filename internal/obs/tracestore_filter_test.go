package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// filterStoreGet drives the store's handler and decodes the JSON envelope.
func filterStoreGet(t *testing.T, h http.Handler, url string) (code int, count int, traces []*TraceRecord, raw string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	if rec.Code != http.StatusOK {
		return rec.Code, 0, nil, rec.Body.String()
	}
	var body struct {
		Count  int            `json:"count"`
		Traces []*TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: bad JSON %q: %v", url, rec.Body, err)
	}
	return rec.Code, body.Count, body.Traces, rec.Body.String()
}

// An empty store must answer a well-formed zero envelope, with or without
// filters — the first thing an operator curls after boot.
func TestTraceStoreHandlerEmptyStore(t *testing.T) {
	ts := NewTraceStore(NewRegistry(), TraceStoreConfig{SlowestN: -1, SampleRate: 0, Seed: 1})
	h := ts.Handler()
	for _, url := range []string{
		"/debug/traces",
		"/debug/traces?route=/estimate&errors=1&minDur=5ms&limit=3",
	} {
		code, count, traces, raw := filterStoreGet(t, h, url)
		if code != http.StatusOK || count != 0 || len(traces) != 0 {
			t.Fatalf("%s on empty store: code=%d count=%d traces=%d body=%s",
				url, code, count, len(traces), raw)
		}
	}
	// The programmatic path too: no nil-slice surprises.
	if recs := ts.Traces(TraceFilter{Route: "/x", ErrorOnly: true, MinDur: time.Second, Limit: 5}); len(recs) != 0 {
		t.Fatalf("empty store Traces() = %v", recs)
	}
}

func TestTraceStoreHandlerLimitEdgeCases(t *testing.T) {
	ts := NewTraceStore(NewRegistry(), TraceStoreConfig{SlowestN: -1, SampleRate: 1, Seed: 1})
	for _, id := range []string{"l1", "l2", "l3"} {
		_, tr := StartTrace(context.Background(), TraceID(id), "/estimate")
		ts.Offer(tr, time.Millisecond)
	}
	h := ts.Handler()

	// limit=0 parses but means "no constraint" — all three come back.
	code, count, _, raw := filterStoreGet(t, h, "/debug/traces?limit=0")
	if code != http.StatusOK || count != 3 {
		t.Fatalf("limit=0: code=%d count=%d body=%s", code, count, raw)
	}
	// Negative and non-numeric limits are client errors, not crashes.
	for _, q := range []string{"limit=-1", "limit=-999", "limit=two", "limit=1.5"} {
		if code, _, _, _ := filterStoreGet(t, h, "/debug/traces?"+q); code != http.StatusBadRequest {
			t.Fatalf("%s: code=%d, want 400", q, code)
		}
	}
	// A limit larger than the retained set clips to what exists.
	if _, count, _, _ := filterStoreGet(t, h, "/debug/traces?limit=50"); count != 3 {
		t.Fatalf("limit=50 count=%d, want 3", count)
	}
}

func TestTraceStoreHandlerBadMinDur(t *testing.T) {
	ts := NewTraceStore(NewRegistry(), TraceStoreConfig{SlowestN: -1, SampleRate: 1, Seed: 1})
	_, tr := StartTrace(context.Background(), "m1", "/estimate")
	ts.Offer(tr, time.Millisecond)
	h := ts.Handler()
	for _, q := range []string{"minDur=banana", "minDur=10lightyears", "minDur=ms", "minDur="} {
		code, _, _, raw := filterStoreGet(t, h, "/debug/traces?"+q)
		// An empty value means "no constraint"; everything else is 400.
		want := http.StatusBadRequest
		if q == "minDur=" {
			want = http.StatusOK
		}
		if code != want {
			t.Fatalf("%s: code=%d want %d body=%s", q, code, want, raw)
		}
	}
}

// Combined filters are conjunctive: route AND errors AND minDur AND limit.
func TestTraceStoreHandlerCombinedRouteErrors(t *testing.T) {
	ts := NewTraceStore(NewRegistry(), TraceStoreConfig{SlowestN: -1, SampleRate: 1, Seed: 1})
	mk := func(id, route string, errored bool, d time.Duration) {
		_, tr := StartTrace(context.Background(), TraceID(id), route)
		if errored {
			tr.noteError()
		}
		ts.Offer(tr, d)
	}
	mk("ok-est", "/estimate", false, 5*time.Millisecond)
	mk("err-est-slow", "/estimate", true, 80*time.Millisecond)
	mk("err-est-fast", "/estimate", true, 1*time.Millisecond)
	mk("err-health", "/healthz", true, 90*time.Millisecond)
	h := ts.Handler()

	code, count, traces, raw := filterStoreGet(t, h, "/debug/traces?route=/estimate&errors=1")
	if code != http.StatusOK || count != 2 {
		t.Fatalf("route+errors: code=%d count=%d body=%s", code, count, raw)
	}
	for _, r := range traces {
		if r.Route != "/estimate" || !r.Error {
			t.Fatalf("route+errors returned %s (%s, error=%v)", r.TraceID, r.Route, r.Error)
		}
	}
	// Adding minDur drops the fast error; limit then caps a set of one.
	_, count, traces, _ = filterStoreGet(t, h, "/debug/traces?route=/estimate&errors=true&minDur=50ms&limit=1")
	if count != 1 || traces[0].TraceID != "err-est-slow" {
		t.Fatalf("full combination = %d traces %v", count, traces)
	}
	// A route nothing matches yields an empty — not error — response.
	if _, count, _, _ = filterStoreGet(t, h, "/debug/traces?route=/nope&errors=1"); count != 0 {
		t.Fatalf("unmatched route count = %d", count)
	}
}

// NewHistogram hands out the same machinery as Registry.Histogram without
// registering a family — the quality monitor's per-window quantile store.
func TestNewHistogramStandalone(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 8} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 13 {
		t.Fatalf("count=%d sum=%v, want 4, 13", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.5); q <= 0 || q > 4 {
		t.Fatalf("median = %v, want within bucket range", q)
	}
}
