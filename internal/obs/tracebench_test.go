package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// BenchmarkSpanUntraced is the hot-path cost every request pays: a span on
// a context with no trace attached (sampling effectively disabled).
func BenchmarkSpanUntraced(b *testing.B) {
	reg := NewRegistry()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := reg.StartSpan(ctx, "bench")
		s.SetInt("k", i)
		s.End()
	}
}

// BenchmarkSpanTraced is the same span inside a live trace: registration,
// parent linking, and attribute storage included.
func BenchmarkSpanTraced(b *testing.B) {
	reg := NewRegistry()
	ctx := context.Background()
	b.ReportAllocs()
	var tctx context.Context
	for i := 0; i < b.N; i++ {
		// A fresh trace every maxTraceSpans spans so registration never hits
		// the per-trace cap and we keep measuring the full path.
		if i%maxTraceSpans == 0 {
			tctx, _ = StartTrace(ctx, TraceID(fmt.Sprintf("b%d", i)), "/bench")
		}
		_, s := reg.StartSpan(tctx, "bench")
		s.SetInt("k", i)
		s.End()
	}
}

// BenchmarkTraceStoreOffer measures the tail-sampling decision for a trace
// that is not retained — the common case under load.
func BenchmarkTraceStoreOffer(b *testing.B) {
	ts := NewTraceStore(NewRegistry(), TraceStoreConfig{SlowestN: -1, SampleRate: 0, Seed: 1})
	_, tr := StartTrace(context.Background(), "bench", "/estimate")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts.Offer(tr, time.Millisecond)
	}
}

// TestUntracedSpanOverhead gates the per-span cost the trace layer adds to
// instrumented code when no trace is attached: the TraceFrom lookup plus
// the no-op attribute setters and Fail. These are nil checks — a handful of
// nanoseconds — so the bound below (low tens of ns, with slack for noisy CI
// machines) catches any accidental allocation or lock on the disabled path.
func TestUntracedSpanOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate, skipped under the race detector")
	}
	reg := NewRegistry()
	ctx := context.Background()
	_, s := reg.StartSpan(ctx, "gate")
	defer s.End()

	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 5; attempt++ {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if tr := TraceFrom(ctx); tr != nil {
					b.Fatal("untraced context grew a trace")
				}
				s.SetInt("batch", i)
				s.SetBool("hit", false)
				s.SetStr("shed", "none")
				s.Fail(nil)
			}
		})
		if d := time.Duration(r.NsPerOp()); d < best {
			best = d
		}
	}
	const bound = 100 * time.Nanosecond
	if best > bound {
		t.Fatalf("disabled-tracing overhead = %v per span, want <= %v", best, bound)
	}
	t.Logf("disabled-tracing overhead: %v per span", best)
}
