package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseTraceID(t *testing.T) {
	good := []string{"a", "deadbeefcafe0123", "A-Z_09", strings.Repeat("x", 64)}
	for _, s := range good {
		if id, ok := ParseTraceID(s); !ok || string(id) != s {
			t.Fatalf("ParseTraceID(%q) = %q, %v; want accepted", s, id, ok)
		}
	}
	bad := []string{"", strings.Repeat("x", 65), "has space", "semi;colon", "new\nline", "Ünïcode"}
	for _, s := range bad {
		if _, ok := ParseTraceID(s); ok {
			t.Fatalf("ParseTraceID(%q) accepted; want rejected", s)
		}
	}
}

func TestNewTraceIDShape(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("two NewTraceID calls collided: %q", a)
	}
	for _, id := range []TraceID{a, b} {
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if _, ok := ParseTraceID(string(id)); !ok {
			t.Fatalf("generated ID %q fails its own parser", id)
		}
	}
}

// TestTraceSpanTree builds a small span tree by hand and checks the
// snapshot preserves parent links, attributes, and error status.
func TestTraceSpanTree(t *testing.T) {
	reg := NewRegistry()
	ctx, tr := StartTrace(context.Background(), "tid-1", "/estimate")
	rctx, root := reg.StartSpan(ctx, "/estimate")

	cctx, child := reg.StartSpan(rctx, "match")
	child.SetInt("candidates", 7)
	child.SetBool("hit", false)
	_, grand := reg.StartSpan(cctx, "viterbi")
	grand.End()
	child.End()

	_, sib := reg.StartSpan(rctx, "estimate")
	sib.Fail(fmt.Errorf("model exploded"))
	sib.Fail(fmt.Errorf("second error ignored"))
	sib.End()

	root.SetInt("status", 500)
	d := root.End()

	if !tr.Errored() {
		t.Fatal("trace with failed span not marked errored")
	}
	rec := tr.snapshot(d, "error")
	if rec.TraceID != "tid-1" || rec.Route != "/estimate" || !rec.Error {
		t.Fatalf("record header = %+v", rec)
	}
	if len(rec.Spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(rec.Spans), rec.Spans)
	}
	byName := map[string]SpanRecord{}
	idx := map[string]int{}
	for i, s := range rec.Spans {
		byName[s.Name] = s
		idx[s.Name] = i
	}
	if byName["/estimate"].Parent != -1 {
		t.Fatalf("root parent = %d, want -1", byName["/estimate"].Parent)
	}
	if byName["match"].Parent != idx["/estimate"] {
		t.Fatalf("match parent = %d, want %d", byName["match"].Parent, idx["/estimate"])
	}
	if byName["viterbi"].Parent != idx["match"] {
		t.Fatalf("viterbi parent = %d, want %d", byName["viterbi"].Parent, idx["match"])
	}
	if byName["estimate"].Parent != idx["/estimate"] {
		t.Fatalf("estimate parent = %d, want %d", byName["estimate"].Parent, idx["/estimate"])
	}
	if byName["estimate"].Error != "model exploded" {
		t.Fatalf("span error = %q, want first Fail to win", byName["estimate"].Error)
	}
	attrs := map[string]any{}
	for _, a := range byName["match"].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["candidates"] != 7 || attrs["hit"] != false {
		t.Fatalf("match attrs = %v", attrs)
	}
	// The histogram side keeps working unchanged.
	for _, name := range []string{"/estimate", "match", "viterbi", "estimate"} {
		if got := reg.Histogram(SpanFamily, DefBuckets, "span", name).Count(); got != 1 {
			t.Fatalf("span %q histogram count = %d, want 1", name, got)
		}
	}
}

// TestUntracedSpanNoops checks Set*/Fail are safe no-ops without a trace.
func TestUntracedSpanNoops(t *testing.T) {
	reg := NewRegistry()
	_, s := reg.StartSpan(context.Background(), "lonely")
	s.SetInt("k", 1)
	s.SetStr("s", "v")
	s.Fail(fmt.Errorf("boom"))
	s.End()
	var nilSpan *Span
	nilSpan.SetAttr("k", 1) // must not panic
	nilSpan.Fail(fmt.Errorf("x"))
	if got := reg.Histogram(SpanFamily, DefBuckets, "span", "lonely").Count(); got != 1 {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestTimeCtxKeepsParentage(t *testing.T) {
	ctx, tr := StartTrace(context.Background(), "tid-time", "/x")
	rctx, root := StartSpan(ctx, "root")
	TimeCtx(rctx, "stage")()
	d := root.End()
	rec := tr.snapshot(d, "sample")
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rec.Spans))
	}
	if rec.Spans[1].Name != "stage" || rec.Spans[1].Parent != 0 {
		t.Fatalf("TimeCtx span = %+v, want child of root", rec.Spans[1])
	}
}

func TestTraceSpanCap(t *testing.T) {
	reg := NewRegistry()
	ctx, tr := StartTrace(context.Background(), "tid-cap", "/batch")
	for i := 0; i < maxTraceSpans+10; i++ {
		_, s := reg.StartSpan(ctx, "stage")
		s.End()
	}
	rec := tr.snapshot(time.Millisecond, "sample")
	if len(rec.Spans) != maxTraceSpans {
		t.Fatalf("got %d spans, want cap %d", len(rec.Spans), maxTraceSpans)
	}
	if rec.SpansDropped != 10 {
		t.Fatalf("SpansDropped = %d, want 10", rec.SpansDropped)
	}
	// Dropped spans still feed the histogram.
	if got := reg.Histogram(SpanFamily, DefBuckets, "span", "stage").Count(); got != maxTraceSpans+10 {
		t.Fatalf("histogram count = %d, want %d", got, maxTraceSpans+10)
	}
}

// finishedTrace makes a minimal completed trace, errored or not.
func finishedTrace(id string, errored bool) *Trace {
	_, tr := StartTrace(context.Background(), TraceID(id), "/estimate")
	if errored {
		tr.noteError()
	}
	return tr
}

func TestTailSamplingErrorAlwaysKept(t *testing.T) {
	ts := NewTraceStore(NewRegistry(), TraceStoreConfig{SlowestN: -1, SampleRate: 0})
	for i := 0; i < 50; i++ {
		kept, reason := ts.Offer(finishedTrace(fmt.Sprintf("ok%d", i), false), time.Millisecond)
		if kept {
			t.Fatalf("normal trace %d kept (%s) with sampling off", i, reason)
		}
	}
	for i := 0; i < 5; i++ {
		kept, reason := ts.Offer(finishedTrace(fmt.Sprintf("err%d", i), true), time.Millisecond)
		if !kept || reason != "error" {
			t.Fatalf("error trace %d: kept=%v reason=%q", i, kept, reason)
		}
	}
	recs := ts.Traces(TraceFilter{})
	if len(recs) != 5 {
		t.Fatalf("retained %d, want 5", len(recs))
	}
	for _, r := range recs {
		if !r.Error || r.Retained != "error" {
			t.Fatalf("retained record = %+v", r)
		}
	}
}

func TestTailSamplingSlowestN(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	ts := NewTraceStore(NewRegistry(), TraceStoreConfig{
		SlowestN:   3,
		Window:     time.Minute,
		SampleRate: 0,
		Now:        func() time.Time { return clock },
	})
	// First three arrivals fill the window set regardless of duration.
	durs := []time.Duration{5 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond}
	for i, d := range durs {
		if kept, reason := ts.Offer(finishedTrace(fmt.Sprintf("t%d", i), false), d); !kept || reason != "slow" {
			t.Fatalf("warmup trace %d (%v): kept=%v reason=%q", i, d, kept, reason)
		}
	}
	// Slower than the window min (1ms) -> kept, evicting the min.
	if kept, _ := ts.Offer(finishedTrace("t3", false), 2*time.Millisecond); !kept {
		t.Fatal("2ms trace should beat 1ms window minimum")
	}
	// Not slower than the new min (2ms) -> dropped.
	if kept, _ := ts.Offer(finishedTrace("t4", false), 1500*time.Microsecond); kept {
		t.Fatal("1.5ms trace kept despite 2ms window minimum")
	}
	// Window rotation resets the set: anything qualifies again.
	clock = clock.Add(2 * time.Minute)
	if kept, reason := ts.Offer(finishedTrace("t5", false), time.Microsecond); !kept || reason != "slow" {
		t.Fatalf("post-rotation trace: kept=%v reason=%q", kept, reason)
	}
}

func TestTailSamplingRates(t *testing.T) {
	all := NewTraceStore(NewRegistry(), TraceStoreConfig{SlowestN: -1, SampleRate: 1, Seed: 42})
	for i := 0; i < 20; i++ {
		if kept, reason := all.Offer(finishedTrace(fmt.Sprintf("s%d", i), false), time.Millisecond); !kept || reason != "sample" {
			t.Fatalf("SampleRate=1 dropped trace %d (reason %q)", i, reason)
		}
	}
	none := NewTraceStore(NewRegistry(), TraceStoreConfig{SlowestN: -1, SampleRate: 0, Seed: 42})
	for i := 0; i < 20; i++ {
		if kept, _ := none.Offer(finishedTrace(fmt.Sprintf("n%d", i), false), time.Millisecond); kept {
			t.Fatalf("SampleRate=0 kept trace %d", i)
		}
	}
}

func TestTraceStoreRingAndFilters(t *testing.T) {
	reg := NewRegistry()
	ts := NewTraceStore(reg, TraceStoreConfig{Capacity: 4, SlowestN: -1, SampleRate: 1, Seed: 1})
	mk := func(id, route string, errored bool, d time.Duration) {
		_, tr := StartTrace(context.Background(), TraceID(id), route)
		if errored {
			tr.noteError()
		}
		ts.Offer(tr, d)
	}
	mk("a", "/estimate", false, 1*time.Millisecond)
	mk("b", "/estimate", true, 2*time.Millisecond)
	mk("c", "/healthz", false, 30*time.Millisecond)
	mk("d", "/estimate", false, 4*time.Millisecond)
	mk("e", "/estimate", false, 50*time.Millisecond) // overwrites "a"

	ids := func(recs []*TraceRecord) []string {
		var out []string
		for _, r := range recs {
			out = append(out, r.TraceID)
		}
		return out
	}
	got := ids(ts.Traces(TraceFilter{}))
	want := []string{"e", "d", "c", "b"} // newest first, "a" overwritten
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Traces() = %v, want %v", got, want)
	}
	if got := ids(ts.Traces(TraceFilter{Route: "/healthz"})); fmt.Sprint(got) != "[c]" {
		t.Fatalf("route filter = %v", got)
	}
	if got := ids(ts.Traces(TraceFilter{MinDur: 10 * time.Millisecond})); fmt.Sprint(got) != "[e c]" {
		t.Fatalf("minDur filter = %v", got)
	}
	if got := ids(ts.Traces(TraceFilter{ErrorOnly: true})); fmt.Sprint(got) != "[b]" {
		t.Fatalf("errors filter = %v", got)
	}
	if got := ids(ts.Traces(TraceFilter{Limit: 2})); fmt.Sprint(got) != "[e d]" {
		t.Fatalf("limit filter = %v", got)
	}
	if got := reg.Counter("tte_trace_completed_total").Value(); got != 5 {
		t.Fatalf("completed counter = %d, want 5", got)
	}
}

func TestTraceStoreHandler(t *testing.T) {
	ts := NewTraceStore(NewRegistry(), TraceStoreConfig{SlowestN: -1, SampleRate: 1, Seed: 1})
	_, tr := StartTrace(context.Background(), "h1", "/estimate")
	tr.noteError()
	ts.Offer(tr, 25*time.Millisecond)
	h := ts.Handler()

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		return rec
	}
	rec := get("/debug/traces?route=/estimate&minDur=10&errors=1&limit=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body)
	}
	var body struct {
		Count     int            `json:"count"`
		Completed uint64         `json:"completed"`
		Traces    []*TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 1 || body.Completed != 1 || len(body.Traces) != 1 || body.Traces[0].TraceID != "h1" {
		t.Fatalf("body = %+v", body)
	}
	// minDur excludes it both as a duration string and bare milliseconds.
	for _, q := range []string{"minDur=1s", "minDur=100"} {
		if rec := get("/debug/traces?" + q); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"count": 0`) {
			t.Fatalf("%s: code=%d body=%s", q, rec.Code, rec.Body)
		}
	}
	if rec := get("/debug/traces?minDur=banana"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad minDur -> %d", rec.Code)
	}
	if rec := get("/debug/traces?limit=-1"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad limit -> %d", rec.Code)
	}
	post := httptest.NewRecorder()
	h.ServeHTTP(post, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if post.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST -> %d", post.Code)
	}
}

func TestRuntimeStats(t *testing.T) {
	reg := NewRegistry()
	CollectRuntime(reg)
	if g := reg.Gauge("tte_go_goroutines").Value(); g < 1 {
		t.Fatalf("goroutines gauge = %v", g)
	}
	if g := reg.Gauge("tte_go_heap_alloc_bytes").Value(); g <= 0 {
		t.Fatalf("heap alloc gauge = %v", g)
	}
	stop := StartRuntimeStats(reg, time.Hour)
	stop()
	stop() // idempotent
}
