package obs

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TraceStoreConfig configures tail sampling and retention.
type TraceStoreConfig struct {
	// Capacity is the ring-buffer size: how many retained traces are kept
	// before the oldest is overwritten. Default 512.
	Capacity int
	// SlowestN traces per Window are always retained regardless of the
	// sample rate — the tail-latency diagnosis set. Default 16; set
	// negative to disable slow retention.
	SlowestN int
	// Window is the rotation period for the slowest-N set. Default 10s.
	Window time.Duration
	// SampleRate is the probability a normal (non-error, non-slow) trace
	// is retained. Taken literally: 0 keeps none, 1 keeps all.
	SampleRate float64
	// Seed seeds the sampling RNG; 0 uses the clock. Tests pin it.
	Seed int64
	// Now overrides the clock for window rotation (tests).
	Now func() time.Time
}

// TraceStore retains finished traces under a tail-sampling policy:
//
//   - every error trace is kept,
//   - the slowest-N traces per rotating window are kept,
//   - plus a probabilistic sample of normal traffic,
//
// all in a fixed-size ring buffer so memory is bounded no matter the
// request rate. GET /debug/traces (see Handler) serves the retained set
// as JSON for diagnosis without an external collector.
type TraceStore struct {
	cfg TraceStoreConfig
	now func() time.Time

	completed  *Counter
	keptError  *Counter
	keptSlow   *Counter
	keptSample *Counter

	mu       sync.Mutex
	ring     []*TraceRecord
	next     int // ring index the next kept trace lands in
	total    int // traces ever kept (ring occupancy = min(total, cap))
	rng      *rand.Rand
	winStart time.Time
	winSlow  []time.Duration // durations of slow-retained traces this window, ascending
}

// NewTraceStore builds a store registering its counters in reg (nil uses
// the default registry).
func NewTraceStore(reg *Registry, cfg TraceStoreConfig) *TraceStore {
	if reg == nil {
		reg = Default()
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 512
	}
	if cfg.SlowestN == 0 {
		cfg.SlowestN = 16
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Second
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	reg.Help("tte_trace_completed_total", "Traces finished, whether retained or not.")
	reg.Help("tte_trace_retained_total", "Traces retained by tail sampling, by reason.")
	return &TraceStore{
		cfg:        cfg,
		now:        now,
		completed:  reg.Counter("tte_trace_completed_total"),
		keptError:  reg.Counter("tte_trace_retained_total", "reason", "error"),
		keptSlow:   reg.Counter("tte_trace_retained_total", "reason", "slow"),
		keptSample: reg.Counter("tte_trace_retained_total", "reason", "sample"),
		ring:       make([]*TraceRecord, cfg.Capacity),
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Offer submits a finished trace of duration d for retention and reports
// whether (and why) it was kept. Reasons are checked in priority order:
// "error" beats "slow" beats "sample".
func (ts *TraceStore) Offer(t *Trace, d time.Duration) (kept bool, reason string) {
	if ts == nil || t == nil {
		return false, ""
	}
	ts.completed.Inc()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	// Feed the slow-window tracker for every trace so "slowest this
	// window" means slowest among all traffic, not just non-errors.
	slow := ts.slowLocked(d)
	switch {
	case t.Errored():
		reason = "error"
		ts.keptError.Inc()
	case slow:
		reason = "slow"
		ts.keptSlow.Inc()
	case ts.cfg.SampleRate > 0 && ts.rng.Float64() < ts.cfg.SampleRate:
		reason = "sample"
		ts.keptSample.Inc()
	default:
		return false, ""
	}
	ts.ring[ts.next] = t.snapshot(d, reason)
	ts.next = (ts.next + 1) % len(ts.ring)
	ts.total++
	return true, reason
}

// slowLocked reports whether d ranks among the slowest-N durations seen in
// the current window, rotating the window as needed. While the window's
// set is not yet full any trace qualifies (the first arrivals are, by
// definition, the slowest seen so far); once full, d must beat the current
// minimum, which it then evicts.
func (ts *TraceStore) slowLocked(d time.Duration) bool {
	if ts.cfg.SlowestN <= 0 {
		return false
	}
	now := ts.now()
	if ts.winStart.IsZero() || now.Sub(ts.winStart) >= ts.cfg.Window {
		ts.winStart = now
		ts.winSlow = ts.winSlow[:0]
	}
	i := sort.Search(len(ts.winSlow), func(i int) bool { return ts.winSlow[i] >= d })
	if len(ts.winSlow) < ts.cfg.SlowestN {
		ts.winSlow = append(ts.winSlow, 0)
		copy(ts.winSlow[i+1:], ts.winSlow[i:])
		ts.winSlow[i] = d
		return true
	}
	if i == 0 {
		return false // not slower than the current minimum
	}
	copy(ts.winSlow[:i-1], ts.winSlow[1:i]) // evict the minimum
	ts.winSlow[i-1] = d
	return true
}

// TraceFilter selects retained traces; zero values mean "no constraint".
type TraceFilter struct {
	// TraceID selects one specific trace — the lookup exemplar trace IDs
	// from /metrics and /debug/metrics/history resolve through.
	TraceID   string
	Route     string
	MinDur    time.Duration
	ErrorOnly bool
	Limit     int
}

// Traces returns retained traces newest-first, filtered. Records are
// immutable; callers may hold them without copying.
func (ts *TraceStore) Traces(f TraceFilter) []*TraceRecord {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	n := ts.total
	if n > len(ts.ring) {
		n = len(ts.ring)
	}
	minMS := float64(f.MinDur) / float64(time.Millisecond)
	out := make([]*TraceRecord, 0, n)
	for k := 0; k < n; k++ {
		rec := ts.ring[((ts.next-1-k)%len(ts.ring)+len(ts.ring))%len(ts.ring)]
		if rec == nil {
			continue
		}
		if f.TraceID != "" && rec.TraceID != f.TraceID {
			continue
		}
		if f.Route != "" && rec.Route != f.Route {
			continue
		}
		if f.MinDur > 0 && rec.DurationMS < minMS {
			continue
		}
		if f.ErrorOnly && !rec.Error {
			continue
		}
		out = append(out, rec)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Handler serves the retained traces as JSON:
//
//	GET /debug/traces?route=/estimate&minDur=50ms&errors=1&limit=20
//	GET /debug/traces?trace=<id>
//
// minDur accepts a Go duration ("50ms", "1.5s") or a bare number of
// milliseconds. errors=1 keeps only error traces. trace= looks up one
// trace by ID — the link exemplar trace IDs resolve through. Traces are
// returned newest-first.
func (ts *TraceStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		f := TraceFilter{TraceID: q.Get("trace"), Route: q.Get("route")}
		if v := q.Get("minDur"); v != "" {
			d, err := parseDur(v)
			if err != nil {
				http.Error(w, "bad minDur: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.MinDur = d
		}
		if v := q.Get("errors"); v == "1" || strings.EqualFold(v, "true") {
			f.ErrorOnly = true
		}
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		recs := ts.Traces(f)
		// The envelope answers "how much am I not seeing" before anyone
		// reads a trace: total_seen is every finished trace offered,
		// dropped the ones tail sampling let go, overwritten the retained
		// ones the ring has since evicted.
		retained := ts.keptError.Value() + ts.keptSlow.Value() + ts.keptSample.Value()
		ts.mu.Lock()
		overwritten := 0
		if ts.total > len(ts.ring) {
			overwritten = ts.total - len(ts.ring)
		}
		ts.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"count":       len(recs),
			"completed":   ts.completed.Value(),
			"total_seen":  ts.completed.Value(),
			"retained":    retained,
			"dropped":     ts.completed.Value() - retained,
			"overwritten": overwritten,
			"traces":      recs,
		})
	})
}

// parseDur reads a duration: time.ParseDuration syntax, with a bare number
// treated as milliseconds ("minDur=50" == "minDur=50ms").
func parseDur(s string) (time.Duration, error) {
	if ms, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Duration(ms * float64(time.Millisecond)), nil
	}
	return time.ParseDuration(s)
}
