package obs

import (
	"sync/atomic"
	"time"
)

// An Exemplar pins one concrete observation — its value, wall time and the
// trace that produced it — to a histogram bucket, so an operator staring at
// a latency spike on a dashboard can jump straight to a trace of a request
// that landed in the offending bucket. Each bucket keeps only its latest
// exemplar (last-write-wins through an atomic pointer), which is what
// OpenMetrics exposition wants and bounds memory at one pointer per bucket.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
	// Unix is the observation wall time in seconds since the epoch, with
	// fractional milliseconds — the timestamp form OpenMetrics exemplars
	// use on the wire.
	Unix float64 `json:"t"`
}

// exemplarsOn gates exemplar recording process-wide. Off (the default) the
// hot-path cost is one nil/flag check; nothing is ever stored. The flag is
// process-global rather than per-registry because the hook sites (Span.End,
// HTTP middleware) fire on every request and must stay branch-cheap.
var exemplarsOn atomic.Bool

// SetExemplars enables or disables exemplar recording process-wide.
// tteserve flips it on with -exemplars.
func SetExemplars(on bool) { exemplarsOn.Store(on) }

// ExemplarsEnabled reports whether exemplar recording is on.
func ExemplarsEnabled() bool { return exemplarsOn.Load() }

// ObserveExemplar records v like Observe and, when exemplar recording is
// enabled and id is non-empty, stamps v's bucket with an exemplar carrying
// the trace ID. With recording disabled this is Observe plus one atomic
// load.
func (h *Histogram) ObserveExemplar(v float64, id TraceID) {
	h.Observe(v)
	if id != "" && exemplarsOn.Load() {
		h.recordExemplar(v, id)
	}
}

// recordExemplar stores the exemplar for v's bucket. Callers have already
// counted v via Observe and checked the enable flag.
func (h *Histogram) recordExemplar(v float64, id TraceID) {
	h.exemplars[h.bucketIdx(v)].Store(&Exemplar{
		TraceID: string(id),
		Value:   v,
		Unix:    float64(time.Now().UnixNano()) / 1e9,
	})
}

// Exemplars returns the latest exemplar per bucket, indexed like the counts
// returned by Buckets (+Inf last). Entries are nil for buckets that never
// recorded one. The returned pointers are immutable.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}
