package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRegisterBuildInfo: the gauge is constant 1, its labels carry the
// binary identity plus caller extras, and the same fields come back for
// /version reuse.
func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	fields := RegisterBuildInfo(reg, "model", "abc123", "city", "chengdu-s")
	if fields["go"] == "" || fields["model"] != "abc123" || fields["city"] != "chengdu-s" {
		t.Fatalf("fields = %v", fields)
	}

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	var line string
	for _, l := range strings.Split(body, "\n") {
		if strings.HasPrefix(l, "tte_build_info{") {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("tte_build_info missing from exposition:\n%s", body)
	}
	for _, want := range []string{`model="abc123"`, `city="chengdu-s"`, `go="go`} {
		if !strings.Contains(line, want) {
			t.Fatalf("series %q missing label %s", line, want)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(line), " 1") {
		t.Fatalf("series %q, want constant value 1", line)
	}

	// Re-registering (a reload updating the model label set) must not
	// panic or duplicate help text.
	RegisterBuildInfo(reg, "model", "abc123", "city", "chengdu-s")
}
