package obs

import (
	"math"
	"testing"
)

// TestQuantileOverflowBucket pins the +Inf clamp: ranks landing in the
// overflow bucket cannot be interpolated (the bucket has no upper bound)
// and must clamp to the largest finite bound instead.
func TestQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_overflow", []float64{1, 2})
	h.Observe(0.5) // first bucket
	h.Observe(5)   // overflow
	h.Observe(7)   // overflow

	// p99 rank (2.97) is deep in the overflow bucket.
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("Quantile(0.99) = %v, want clamp to 2", got)
	}
	// All observations in overflow: every quantile clamps.
	h2 := r.Histogram("q_all_overflow", []float64{1, 2})
	h2.Observe(10)
	h2.Observe(20)
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h2.Quantile(q); got != 2 {
			t.Fatalf("all-overflow Quantile(%v) = %v, want 2", q, got)
		}
	}
}

// TestQuantileSingleBucket checks interpolation when one finite bucket
// holds everything: the estimate interpolates between the implicit lower
// bound 0 and the bucket's upper bound.
func TestQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_single", []float64{10})
	for i := 0; i < 5; i++ {
		h.Observe(3)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v, want midpoint 5", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("Quantile(1) = %v, want upper bound 10", got)
	}
}

// TestQuantileExtremes pins q=0, q=1 and out-of-range q: 0 lands on the
// first nonempty bucket's lower bound, 1 on the last nonempty bucket's
// upper bound, and out-of-range values clamp rather than extrapolate.
func TestQuantileExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_extremes", []float64{1, 2, 4, 8})
	h.Observe(1.5) // (1, 2]
	h.Observe(3)   // (2, 4]
	h.Observe(3.5) // (2, 4]

	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want first nonempty lower bound 1", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %v, want last nonempty upper bound 4", got)
	}
	if got := h.Quantile(-0.5); got != 1 {
		t.Fatalf("Quantile(-0.5) = %v, want clamp to Quantile(0)", got)
	}
	if got := h.Quantile(2); got != 4 {
		t.Fatalf("Quantile(2) = %v, want clamp to Quantile(1)", got)
	}
}

// TestQuantileNaNAndEmpty pins the NaN contract: NaN q, an empty
// histogram, and a histogram with no finite buckets all return NaN
// instead of a fabricated number.
func TestQuantileNaNAndEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_nan", []float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram Quantile = %v, want NaN", got)
	}
	h.Observe(1.5)
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}
	// No finite buckets: every observation is overflow and there is no
	// bound to clamp to.
	h2 := r.Histogram("q_no_buckets", nil)
	h2.Observe(1)
	if got := h2.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("no-finite-bucket Quantile = %v, want NaN", got)
	}
}
