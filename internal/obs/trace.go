package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"
)

// TraceID identifies one request's span tree end-to-end. Generated IDs are
// 16 lowercase hex digits; client-supplied IDs (X-Trace-Id) are accepted
// as-is when they pass ParseTraceID.
type TraceID string

// NewTraceID returns a random 16-hex-digit trace ID.
func NewTraceID() TraceID {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand does not fail on supported platforms; if it ever
		// does, a time-derived ID keeps requests traceable rather than
		// failing the request path over an ID.
		binary.BigEndian.PutUint64(b[:], uint64(time.Now().UnixNano()))
	}
	return TraceID(hex.EncodeToString(b[:]))
}

// ParseTraceID validates a client-supplied trace ID: 1..64 characters from
// [0-9A-Za-z_-]. Anything else (empty, oversized, control characters that
// could pollute logs or headers) is rejected and the caller should mint a
// fresh ID with NewTraceID.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) == 0 || len(s) > 64 {
		return "", false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c == '_' || c == '-':
		default:
			return "", false
		}
	}
	return TraceID(s), true
}

// Attr is one typed span attribute. Values are JSON-native scalars set via
// the Span.Set* helpers (int, float64, bool, string).
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// maxTraceSpans caps how many spans one trace records, so a pathological
// request (say, an EstimateBatch over thousands of inputs) cannot balloon
// a single trace record. Spans past the cap still feed their histograms;
// they just aren't attached to the tree, and the drop is counted on the
// trace.
const maxTraceSpans = 512

type traceCtxKey struct{}

// Trace collects the spans of one request into a tree. It is created by
// StartTrace (normally from the HTTP middleware), carried in the context,
// and handed to a TraceStore when the request finishes. All methods are
// safe for concurrent use: engine workers and the request goroutine append
// spans to the same trace.
type Trace struct {
	id    TraceID
	route string
	start time.Time

	mu      sync.Mutex
	spans   []*Span
	dropped int
	err     bool
}

// StartTrace begins a trace for one request and returns a context carrying
// it. An empty id mints a fresh one. Spans started under the returned
// context (directly or via child contexts) are recorded into the trace.
func StartTrace(ctx context.Context, id TraceID, route string) (context.Context, *Trace) {
	if id == "" {
		id = NewTraceID()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	t := &Trace{id: id, route: route, start: time.Now()}
	return context.WithValue(ctx, traceCtxKey{}, t), t
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// TraceIDFrom returns the trace ID carried by ctx, or "" when untraced.
func TraceIDFrom(ctx context.Context) TraceID {
	if t := TraceFrom(ctx); t != nil {
		return t.id
	}
	return ""
}

// ID returns the trace's ID.
func (t *Trace) ID() TraceID { return t.id }

// Route returns the route label the trace was started under.
func (t *Trace) Route() string { return t.route }

// register attaches s to the trace, recording its parent by index. Called
// by StartSpan before the span escapes to other goroutines, so the span's
// trace/index fields are published by the StartSpan return.
func (t *Trace) register(s, parent *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxTraceSpans {
		t.dropped++
		return
	}
	s.trace = t
	s.index = len(t.spans)
	if parent != nil && parent.trace == t {
		s.parentIdx = parent.index
	}
	t.spans = append(t.spans, s)
}

// noteError marks the whole trace errored (tail sampling retains it).
func (t *Trace) noteError() {
	t.mu.Lock()
	t.err = true
	t.mu.Unlock()
}

// Errored reports whether any span in the trace failed.
func (t *Trace) Errored() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// snapshot freezes the trace into an immutable TraceRecord for the store.
func (t *Trace) snapshot(d time.Duration, reason string) *TraceRecord {
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	isErr := t.err
	t.mu.Unlock()

	rec := &TraceRecord{
		TraceID:      string(t.id),
		Route:        t.route,
		Start:        t.start,
		DurationMS:   float64(d) / float64(time.Millisecond),
		Error:        isErr,
		Retained:     reason,
		SpansDropped: dropped,
		Spans:        make([]SpanRecord, len(spans)),
	}
	for i, s := range spans {
		s.mu.Lock()
		sr := SpanRecord{
			Name:       s.name,
			Parent:     s.parentIdx,
			StartUS:    s.start.Sub(t.start).Microseconds(),
			DurationUS: s.dur.Microseconds(),
			Error:      s.errMsg,
		}
		if len(s.attrs) > 0 {
			sr.Attrs = make([]Attr, len(s.attrs))
			copy(sr.Attrs, s.attrs)
		}
		s.mu.Unlock()
		rec.Spans[i] = sr
	}
	return rec
}

// TraceRecord is the immutable, JSON-serialisable form of a finished trace
// as served by GET /debug/traces.
type TraceRecord struct {
	TraceID      string       `json:"trace_id"`
	Route        string       `json:"route"`
	Start        time.Time    `json:"start"`
	DurationMS   float64      `json:"duration_ms"`
	Error        bool         `json:"error"`
	Retained     string       `json:"retained"` // "error" | "slow" | "sample"
	SpansDropped int          `json:"spans_dropped,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// SpanRecord is one span in a TraceRecord. Parent is the index of the
// parent span within the record's Spans slice, -1 for the root.
type SpanRecord struct {
	Name       string `json:"name"`
	Parent     int    `json:"parent"`
	StartUS    int64  `json:"start_us"`
	DurationUS int64  `json:"duration_us"`
	Attrs      []Attr `json:"attrs,omitempty"`
	Error      string `json:"error,omitempty"`
}
