package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func tracedMiddleware(t *testing.T) (*TraceStore, http.Handler) {
	t.Helper()
	reg := NewRegistry()
	ts := NewTraceStore(reg, TraceStoreConfig{SlowestN: -1, SampleRate: 1, Seed: 1})
	h := Middleware{Registry: reg, Traces: ts}.Wrap("/estimate",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, s := StartSpan(r.Context(), "work")
			s.End()
			if r.URL.Query().Get("fail") == "1" {
				http.Error(w, "boom", http.StatusInternalServerError)
				return
			}
			w.Write([]byte("ok"))
		}))
	return ts, h
}

func TestMiddlewareMintsAndEchoesTraceID(t *testing.T) {
	ts, h := tracedMiddleware(t)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/estimate", nil))
	id := rec.Header().Get(TraceHeader)
	if id == "" {
		t.Fatal("response missing X-Trace-Id")
	}
	if _, ok := ParseTraceID(id); !ok {
		t.Fatalf("minted ID %q invalid", id)
	}
	recs := ts.Traces(TraceFilter{})
	if len(recs) != 1 || recs[0].TraceID != id {
		t.Fatalf("retained traces = %+v, want one with ID %q", recs, id)
	}
	if recs[0].Spans[0].Name != "/estimate" || recs[0].Spans[0].Parent != -1 {
		t.Fatalf("root span = %+v", recs[0].Spans[0])
	}
	if len(recs[0].Spans) != 2 || recs[0].Spans[1].Name != "work" || recs[0].Spans[1].Parent != 0 {
		t.Fatalf("handler span not linked under root: %+v", recs[0].Spans)
	}
}

func TestMiddlewareAdoptsClientTraceID(t *testing.T) {
	_, h := tracedMiddleware(t)
	req := httptest.NewRequest(http.MethodGet, "/estimate", nil)
	req.Header.Set(TraceHeader, "client-supplied-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(TraceHeader); got != "client-supplied-42" {
		t.Fatalf("echoed ID = %q, want adoption", got)
	}
	// A malformed client ID is replaced, not echoed.
	req = httptest.NewRequest(http.MethodGet, "/estimate", nil)
	req.Header.Set(TraceHeader, "bad id\nwith newline")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	got := rec.Header().Get(TraceHeader)
	if got == "" || strings.Contains(got, "\n") || got == "bad id\nwith newline" {
		t.Fatalf("malformed client ID handled badly: %q", got)
	}
}

func TestMiddlewareRetainsErrorTraces(t *testing.T) {
	reg := NewRegistry()
	ts := NewTraceStore(reg, TraceStoreConfig{SlowestN: -1, SampleRate: 0, Seed: 1})
	h := Middleware{Registry: reg, Traces: ts}.Wrap("/estimate",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("fail") == "1" {
				http.Error(w, "boom", http.StatusInternalServerError)
				return
			}
			w.Write([]byte("ok"))
		}))
	for i := 0; i < 10; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/estimate", nil))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/estimate?fail=1", nil))

	recs := ts.Traces(TraceFilter{})
	if len(recs) != 1 {
		t.Fatalf("retained %d traces, want only the error", len(recs))
	}
	r := recs[0]
	if !r.Error || r.Retained != "error" {
		t.Fatalf("record = %+v", r)
	}
	attrs := map[string]any{}
	for _, a := range r.Spans[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["status"] != float64(500) && attrs["status"] != 500 {
		t.Fatalf("root attrs = %v, want status 500", attrs)
	}
	if r.Spans[0].Error == "" {
		t.Fatalf("root span of 500 response has no error: %+v", r.Spans[0])
	}
}

func TestMiddlewareStructuredLogs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewTraceHandler(slog.NewTextHandler(&buf, nil)))
	reg := NewRegistry()
	ts := NewTraceStore(reg, TraceStoreConfig{SlowestN: -1, SampleRate: 0, Seed: 1})
	status := http.StatusOK
	h := Middleware{Registry: reg, Logger: logger, AccessLogEvery: 3, Traces: ts}.Wrap("/estimate",
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(status)
		}))
	do := func() string {
		buf.Reset()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/estimate", nil))
		return buf.String()
	}
	// With AccessLogEvery=3 only the 1st, 4th, ... success logs at Info.
	var logged int
	for i := 0; i < 6; i++ {
		line := do()
		if line == "" {
			continue
		}
		logged++
		for _, want := range []string{"level=INFO", "route=/estimate", "status=200", "trace_id="} {
			if !strings.Contains(line, want) {
				t.Fatalf("access log line missing %q: %s", want, line)
			}
		}
	}
	if logged != 2 {
		t.Fatalf("6 requests at every-3 sampling logged %d lines, want 2", logged)
	}
	// 4xx and 5xx are never sampled away.
	status = http.StatusBadRequest
	if line := do(); !strings.Contains(line, "level=WARN") {
		t.Fatalf("4xx log = %q, want WARN", line)
	}
	status = http.StatusInternalServerError
	if line := do(); !strings.Contains(line, "level=ERROR") {
		t.Fatalf("5xx log = %q, want ERROR", line)
	}
}

func TestTraceHandlerPassthrough(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewTraceHandler(slog.NewTextHandler(&buf, nil))).With("app", "test")
	ctx, _ := StartTrace(nil, "slog-tid", "/x")
	logger.InfoContext(ctx, "hello", "k", "v")
	line := buf.String()
	for _, want := range []string{"trace_id=slog-tid", "app=test", "k=v", "msg=hello"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line missing %q: %s", want, line)
		}
	}
	buf.Reset()
	logger.Info("no trace")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("untraced line grew a trace_id: %s", buf.String())
	}
}

// TestInstrumentShimStillWorks pins the legacy entry point: metrics and the
// printf log line, no tracing.
func TestInstrumentShimStillWorks(t *testing.T) {
	reg := NewRegistry()
	var line string
	h := Instrument(reg, "/ping", func(format string, args ...any) {
		line = format
	}, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pong"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/ping", nil))
	if rec.Header().Get(TraceHeader) != "" {
		t.Fatal("Instrument (no store) should not mint trace IDs")
	}
	if line == "" {
		t.Fatal("legacy logf not called")
	}
	if got := reg.Counter("tte_http_requests_total", "route", "/ping", "code", "2xx").Value(); got != 1 {
		t.Fatalf("counter = %d", got)
	}
	if got := reg.Histogram("tte_http_request_seconds", DefBuckets, "route", "/ping").Count(); got != 1 {
		t.Fatalf("latency count = %d", got)
	}
}
