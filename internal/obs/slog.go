package obs

import (
	"context"
	"log/slog"
)

// TraceHandler decorates a slog.Handler so every record logged with a
// traced context carries a trace_id attribute — the correlation key
// between structured log lines and the spans at GET /debug/traces. Logs
// on untraced contexts pass through unchanged.
//
//	logger := slog.New(obs.NewTraceHandler(slog.NewTextHandler(os.Stderr, nil)))
//	logger.ErrorContext(ctx, "reload failed", "err", err) // + trace_id=...
type TraceHandler struct {
	inner slog.Handler
}

// NewTraceHandler wraps h.
func NewTraceHandler(h slog.Handler) *TraceHandler {
	return &TraceHandler{inner: h}
}

// Enabled defers to the wrapped handler.
func (h *TraceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle stamps trace_id from ctx (when present) and delegates.
func (h *TraceHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := TraceIDFrom(ctx); id != "" {
		r.AddAttrs(slog.String("trace_id", string(id)))
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs keeps the trace decoration on derived loggers.
func (h *TraceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &TraceHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup keeps the trace decoration on grouped loggers.
func (h *TraceHandler) WithGroup(name string) slog.Handler {
	return &TraceHandler{inner: h.inner.WithGroup(name)}
}
