package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families keyed by name. Each family has one kind
// (counter, gauge or histogram) and any number of children distinguished
// by label values. Creation is mutex-guarded; mutation of the returned
// metrics is lock-free.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

type family struct {
	name string
	kind string // "counter" | "gauge" | "histogram"
	help string

	mu       sync.RWMutex
	children map[string]any // label key -> *Counter | *Gauge | *Histogram
	labels   map[string][]string
}

// NewRegistry returns an empty registry. Most code should use Default().
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Help sets the family's HELP text emitted in the exposition. It may be
// called before or after the family's first metric is created.
func (r *Registry) Help(name, help string) {
	f := r.family(name, "", nil)
	f.mu.Lock()
	f.help = help
	f.mu.Unlock()
}

// Counter returns the counter name{labels...}, creating it on first use.
// labels are alternating key, value pairs. Counter panics if name is
// already registered as a different kind or labels are malformed — both
// programmer errors.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return getOrCreate(r, name, "counter", labels, func() *Counter { return &Counter{} })
}

// Gauge returns the gauge name{labels...}, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return getOrCreate(r, name, "gauge", labels, func() *Gauge { return &Gauge{} })
}

// Histogram returns the histogram name{labels...}, creating it on first
// use with the given bucket upper bounds (ascending; an implicit +Inf
// bucket is appended). Buckets are fixed at creation: later calls with
// the same identity return the existing histogram and ignore buckets.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	return getOrCreate(r, name, "histogram", labels, func() *Histogram { return newHistogram(buckets) })
}

func (r *Registry) family(name, kind string, _ []string) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, kind: kind, children: make(map[string]any), labels: make(map[string][]string)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if kind != "" {
		f.mu.Lock()
		if f.kind == "" {
			f.kind = kind
		}
		k := f.kind
		f.mu.Unlock()
		if k != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, k, kind))
		}
	}
	return f
}

func getOrCreate[M any](r *Registry, name, kind string, labels []string, make func() M) M {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: odd label list %q", name, labels))
	}
	key := labelKey(labels)
	f := r.family(name, kind, labels)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if !ok {
		f.mu.Lock()
		c, ok = f.children[key]
		if !ok {
			c = make()
			f.children[key] = c
			f.labels[key] = append([]string(nil), labels...)
		}
		f.mu.Unlock()
	}
	m, ok := c.(M)
	if !ok {
		// Unreachable unless family kinds were raced into inconsistency.
		panic(fmt.Sprintf("obs: metric %q{%s} has kind %T", name, key, c))
	}
	return m
}

// labelKey serializes label pairs into a canonical (sorted) identity.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+"\x00"+labels[i+1])
	}
	sort.Strings(pairs)
	return strings.Join(pairs, "\x01")
}

// A Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1 and Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default duration buckets in seconds, spanning 100µs
// to 10s — wide enough for both per-record training forward passes and
// whole-request serving latencies.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// A Histogram counts observations into fixed buckets and tracks their sum,
// like a Prometheus histogram. Observe is lock-free; a concurrent reader
// may see a bucket increment before the matching sum update, which the
// exposition format tolerates (scrapes are not atomic snapshots).
type Histogram struct {
	uppers  []float64 // ascending bucket upper bounds, excluding +Inf
	buckets []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	// exemplars holds the latest exemplar per bucket (+Inf last), written
	// only when exemplar recording is enabled (see exemplar.go). One atomic
	// pointer per bucket: readers never block writers.
	exemplars []atomic.Pointer[Exemplar]
}

// NewHistogram returns a standalone histogram that is not registered in
// any registry. Use it for short-lived aggregation windows — the quality
// monitor keeps one per rotating window for abs-error quantiles — where
// registering every window would leak families; the registry path
// (Registry.Histogram) remains the way to expose a histogram on /metrics.
func NewHistogram(uppers []float64) *Histogram { return newHistogram(uppers) }

func newHistogram(uppers []float64) *Histogram {
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", uppers))
		}
	}
	h := &Histogram{uppers: append([]float64(nil), uppers...)}
	h.buckets = make([]atomic.Uint64, len(h.uppers))
	h.exemplars = make([]atomic.Pointer[Exemplar], len(h.uppers)+1)
	return h
}

// bucketIdx returns the index of the bucket v falls into; len(uppers) is
// the +Inf bucket.
func (h *Histogram) bucketIdx(v float64) int {
	// Binary search for the first upper bound >= v.
	lo, hi := 0, len(h.uppers)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.uppers[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if lo := h.bucketIdx(v); lo < len(h.uppers) {
		h.buckets[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the bucket upper bounds and their non-cumulative counts;
// the final count is the +Inf bucket.
func (h *Histogram) Buckets() (uppers []float64, counts []uint64) {
	uppers = append([]float64(nil), h.uppers...)
	counts = make([]uint64, len(h.buckets)+1)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	counts[len(h.buckets)] = h.inf.Load()
	return uppers, counts
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing it. Values in the +Inf bucket clamp to the
// largest finite bound. Returns NaN on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n >= rank && n > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.uppers[i-1]
			}
			frac := (rank - cum) / n
			return lower + frac*(h.uppers[i]-lower)
		}
		cum += n
	}
	if len(h.uppers) == 0 {
		return math.NaN()
	}
	return h.uppers[len(h.uppers)-1]
}
