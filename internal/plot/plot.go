// Package plot renders small ASCII charts for the experiment harness: line
// charts for the validation curves of Figure 10 and the PDFs of Figure 11,
// sparklines for quick series, and shaded heatmaps for Figure 14b. Pure
// text output keeps the harness dependency-free and diffable.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a one-line block chart. Empty input yields "".
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range xs {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Series is one named line of a Lines chart.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// Lines renders one or more series into a width×height character chart
// with a labeled Y range. Each series is drawn with its own glyph
// (first letter of its name).
func Lines(series []Series, width, height int) string {
	if width < 8 || height < 3 || len(series) == 0 {
		return ""
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.Xs {
			xlo, xhi = math.Min(xlo, s.Xs[i]), math.Max(xhi, s.Xs[i])
			ylo, yhi = math.Min(ylo, s.Ys[i]), math.Max(yhi, s.Ys[i])
		}
	}
	if xhi <= xlo {
		xhi = xlo + 1
	}
	if yhi <= ylo {
		yhi = ylo + 1
	}
	cells := make([][]rune, height)
	for r := range cells {
		cells[r] = make([]rune, width)
		for c := range cells[r] {
			cells[r][c] = ' '
		}
	}
	for _, s := range series {
		glyph := '*'
		if s.Name != "" {
			glyph = rune(s.Name[0])
		}
		for i := range s.Xs {
			c := int((s.Xs[i] - xlo) / (xhi - xlo) * float64(width-1))
			r := height - 1 - int((s.Ys[i]-ylo)/(yhi-ylo)*float64(height-1))
			if r >= 0 && r < height && c >= 0 && c < width {
				cells[r][c] = glyph
			}
		}
	}
	var b strings.Builder
	for r, row := range cells {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%8.1f |", yhi)
		case height - 1:
			fmt.Fprintf(&b, "%8.1f |", ylo)
		default:
			b.WriteString("         |")
		}
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString("         +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "          %-10.1f%*s\n", xlo, width-10, fmt.Sprintf("%.1f", xhi))
	var legend []string
	for _, s := range series {
		if s.Name != "" {
			legend = append(legend, fmt.Sprintf("%c=%s", s.Name[0], s.Name))
		}
	}
	if len(legend) > 0 {
		b.WriteString("          " + strings.Join(legend, "  ") + "\n")
	}
	return b.String()
}

// heatRunes shade from light to dark.
var heatRunes = []rune(" .:-=+*#%@")

// Heatmap renders a rows×cols value grid with row labels.
func Heatmap(values [][]float64, rowLabels []string) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range values {
		for _, v := range row {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	var b strings.Builder
	for r, row := range values {
		label := ""
		if r < len(rowLabels) {
			label = rowLabels[r]
		}
		fmt.Fprintf(&b, "%-5s", label)
		for _, v := range row {
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(heatRunes)-1))
			}
			b.WriteRune(heatRunes[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
