package plot

import (
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input should yield empty string")
	}
	// Constant series: all-minimum blocks, no panic.
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline %q", flat)
	}
}

func TestLines(t *testing.T) {
	out := Lines([]Series{
		{Name: "alpha", Xs: []float64{0, 1, 2}, Ys: []float64{10, 20, 30}},
		{Name: "beta", Xs: []float64{0, 1, 2}, Ys: []float64{30, 20, 10}},
	}, 30, 8)
	if out == "" {
		t.Fatal("empty chart")
	}
	if !strings.Contains(out, "a=alpha") || !strings.Contains(out, "b=beta") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "30.0") || !strings.Contains(out, "10.0") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	if !strings.ContainsRune(out, 'a') || !strings.ContainsRune(out, 'b') {
		t.Fatalf("series glyphs missing:\n%s", out)
	}
	// Degenerate dimensions yield "".
	if Lines(nil, 30, 8) != "" || Lines([]Series{{Xs: []float64{1}, Ys: []float64{1}}}, 2, 2) != "" {
		t.Fatal("degenerate charts should be empty")
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap([][]float64{{0, 1, 2}, {2, 1, 0}}, []string{"r0", "r1"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("heatmap rows %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "r0") || !strings.HasPrefix(lines[1], "r1") {
		t.Fatalf("row labels missing:\n%s", out)
	}
	// Max value renders darkest, min lightest.
	r0 := []rune(lines[0])
	if r0[len(r0)-1] != '@' {
		t.Fatalf("max cell not darkest: %q", lines[0])
	}
	if Heatmap(nil, nil) != "" {
		t.Fatal("empty heatmap should be empty string")
	}
}
