// Package benchmeta captures the benchmark-host environment that every
// BENCH_*.json report embeds, so reports from different machines (and CI
// runs) stay comparable and gate decisions are explainable after the
// fact. All four bench tools (trainbench, servebench, ingestbench,
// ttereplay) share this one struct instead of hand-rolling their own
// subsets with drifting field names.
package benchmeta

import "runtime"

// Env identifies the host a benchmark ran on. Embed it in a report
// struct; the fields flatten into the report's top level.
type Env struct {
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// Capture reads the current process's environment.
func Capture() Env {
	return Env{
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}
