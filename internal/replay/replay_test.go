package replay

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepod/internal/geo"
	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/recorder"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// cells quantizes onto unit cells, matching what a recording engine with
// the same quantizer would have used.
type cells struct{}

func (cells) CellIndex(p geo.Point) int { return int(p.X/100) + 1000*int(p.Y/100) }

// snap returns a deterministic pure-function snapshot: the estimate is a
// fixed combination of the matched departure time, so identical inputs
// reproduce bit-for-bit and different "checkpoints" disagree.
func snap(id string, scale float64) *infer.Snapshot {
	return &infer.Snapshot{
		ID: id,
		Estimate: func(_ context.Context, m *traj.MatchedOD) float64 {
			return scale * (1 + m.DepartSec/7)
		},
	}
}

func match(_ context.Context, od traj.ODInput) (traj.MatchedOD, error) {
	return traj.MatchedOD{DepartSec: od.DepartSec}, nil
}

// record plays a request stream through a real engine with a rate-1
// recorder and returns the captured events — the fixture every replay test
// starts from.
func record(t *testing.T, s *infer.Snapshot, reqs []traj.ODInput) []recorder.Event {
	t.Helper()
	rec, err := recorder.New(recorder.Config{
		SampleRate: 1,
		Cells:      cells{},
		Slotter:    timeslot.MustNew(5 * time.Minute),
		Registry:   obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	eng, err := infer.New(infer.Config{
		Match: match, Snapshot: s,
		Workers: 1, MaxBatch: 1,
		CacheEntries: 128, Cells: cells{}, Slotter: timeslot.MustNew(5 * time.Minute),
		Flight:   rec,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, od := range reqs {
		_, _ = eng.Do(context.Background(), od)
	}
	evs := rec.Events(recorder.Filter{})
	// Events come newest-first; Run re-sorts, but return capture order for
	// clarity.
	for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
		evs[i], evs[j] = evs[j], evs[i]
	}
	return evs
}

func reqStream() []traj.ODInput {
	reqs := make([]traj.ODInput, 0, 24)
	for i := 0; i < 10; i++ {
		reqs = append(reqs, traj.ODInput{
			Origin:    geo.Point{X: float64(i * 150), Y: 100},
			Dest:      geo.Point{X: 900, Y: float64(i * 120)},
			DepartSec: float64(600 + 40*i),
		})
	}
	// Repeats inside the same cells + slot: cache hits in the recording.
	reqs = append(reqs, reqs[0], reqs[1], reqs[2])
	// And errors: negative departures the engine rejects.
	reqs = append(reqs, traj.ODInput{DepartSec: -1}, traj.ODInput{DepartSec: -2})
	return reqs
}

// TestReplaySameCheckpointBitForBit is the determinism gate in miniature:
// a complete recording replayed against the identical checkpoint must
// match every estimate bit-for-bit and reproduce every error, with zero
// unexplained diffs.
func TestReplaySameCheckpointBitForBit(t *testing.T) {
	s := snap("m1", 40)
	events := record(t, s, reqStream())
	if len(events) != 15 {
		t.Fatalf("recorded %d events, want 15", len(events))
	}
	rep, err := Run(context.Background(), Config{
		Snapshot: s, Match: match,
		Cells: cells{}, Slotter: timeslot.MustNew(5 * time.Minute),
	}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnexplainedDiffs != 0 {
		t.Fatalf("unexplained diffs = %d, want 0: %+v", rep.UnexplainedDiffs, rep)
	}
	if rep.Matched != 13 || rep.ErrorsReproduced != 2 || rep.ErrorsChanged != 0 {
		t.Fatalf("report = %+v, want 13 matched + 2 errors reproduced", rep)
	}
	if rep.Replayed != 15 || rep.Overall.MAESec != 0 || rep.Overall.Changed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.EventsPerSec <= 0 {
		t.Fatalf("throughput = %v", rep.EventsPerSec)
	}
}

// TestReplayDifferentCheckpointExplains: against another checkpoint every
// diff is explained as a snapshot regression and quantified — the MAE and
// changed-count a release gate reads.
func TestReplayDifferentCheckpointExplains(t *testing.T) {
	events := record(t, snap("m1", 40), reqStream())
	rep, err := Run(context.Background(), Config{
		Snapshot: snap("m2", 44), Match: match,
		Cells: cells{}, Slotter: timeslot.MustNew(5 * time.Minute),
		ToleranceSec: 5,
	}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnexplainedDiffs != 0 || rep.Matched != 0 {
		t.Fatalf("report = %+v, want all diffs explained by the snapshot", rep)
	}
	if rep.Explanations["snapshot"] != 13 {
		t.Fatalf("explanations = %v", rep.Explanations)
	}
	if rep.Overall.MAESec <= 0 || rep.Overall.Changed == 0 {
		t.Fatalf("regression stats empty: %+v", rep.Overall)
	}
	if len(rep.PerGeneration) == 0 || len(rep.PerOriginCell) < 2 {
		t.Fatalf("per-bucket tables missing: gen=%v cells=%v", rep.PerGeneration, rep.PerOriginCell)
	}
	// Errors still reproduce: invalid input is invalid under any model.
	if rep.ErrorsReproduced != 2 {
		t.Fatalf("errors reproduced = %d", rep.ErrorsReproduced)
	}
}

// TestReplayLiveTrafficExplained: events recorded under live traffic are
// explained diffs — the offline engine cannot rebuild the probe stream.
func TestReplayLiveTrafficExplained(t *testing.T) {
	s := snap("m1", 40)
	events := record(t, s, reqStream()[:3])
	// Forge the live flag on one event and bump its estimate, as if the
	// serving path had merged probe speeds into the features.
	events[1].TrafficLive = true
	events[1].EstimateSec += 10
	rep, err := Run(context.Background(), Config{
		Snapshot: s, Match: match,
		Cells: cells{}, Slotter: timeslot.MustNew(5 * time.Minute),
	}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnexplainedDiffs != 0 || rep.Explanations["traffic_live"] != 1 || rep.Matched != 2 {
		t.Fatalf("report = %+v (%v)", rep, rep.Explanations)
	}
}

// TestReplayUnexplainedDetected: tamper with a recorded estimate and the
// gate must trip — zero false negatives is the point of the check.
func TestReplayUnexplainedDetected(t *testing.T) {
	s := snap("m1", 40)
	events := record(t, s, reqStream()[:4])
	events[2].EstimateSec += 0.125
	rep, err := Run(context.Background(), Config{
		Snapshot: s, Match: match,
		Cells: cells{}, Slotter: timeslot.MustNew(5 * time.Minute),
	}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnexplainedDiffs != 1 {
		t.Fatalf("unexplained = %d, want the tampered event caught: %+v", rep.UnexplainedDiffs, rep)
	}
}

// TestReplaySkipsShed: shed and cancelled outcomes are load artifacts;
// replay must skip them, not fail on them.
func TestReplaySkipsShed(t *testing.T) {
	s := snap("m1", 40)
	events := record(t, s, reqStream()[:2])
	events = append(events, recorder.Event{Seq: 900, Err: "overloaded", Shed: true},
		recorder.Event{Seq: 901, Err: "canceled"})
	rep, err := Run(context.Background(), Config{
		Snapshot: s, Match: match,
		Cells: cells{}, Slotter: timeslot.MustNew(5 * time.Minute),
	}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 2 || rep.Skipped["overloaded"] != 1 || rep.Skipped["canceled"] != 1 {
		t.Fatalf("report = %+v (skipped %v)", rep, rep.Skipped)
	}
	if rep.UnexplainedDiffs != 0 {
		t.Fatalf("unexplained = %d", rep.UnexplainedDiffs)
	}
}

// TestReplayFusedRecordingBitForBit records through an engine whose snapshot
// serves drained batches with a fused EstimateBatch (MaxBatch 16, concurrent
// clients, a gated first request so multi-request drains provably form), then
// replays the events through Run's pinned per-sample engine (Workers 1,
// MaxBatch 1 — EstimateBatch never fires). Zero unexplained diffs means the
// batch size a request happened to be served at never leaks into its answer —
// the contract that keeps fused-engine recordings replayable.
func TestReplayFusedRecordingBitForBit(t *testing.T) {
	estimate := func(m *traj.MatchedOD) float64 { return 3 * (1 + m.DepartSec/7) }
	gate := make(chan struct{})
	var fusedBatches atomic.Int64
	s := &infer.Snapshot{
		ID: "fused",
		Estimate: func(_ context.Context, m *traj.MatchedOD) float64 {
			<-gate // recording: hold the worker until the queue fills; replay: closed, no-op
			return estimate(m)
		},
		EstimateBatch: func(_ context.Context, ods []traj.MatchedOD) []float64 {
			if len(ods) > 1 {
				fusedBatches.Add(1)
			}
			out := make([]float64, len(ods))
			for i := range ods {
				out[i] = estimate(&ods[i])
			}
			return out
		},
	}

	rec, err := recorder.New(recorder.Config{
		SampleRate: 1,
		Cells:      cells{},
		Slotter:    timeslot.MustNew(5 * time.Minute),
		Registry:   obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	eng, err := infer.New(infer.Config{
		Match: match, Snapshot: s,
		Workers: 1, MaxBatch: 16, QueueDepth: 64,
		CacheEntries: 128, Cells: cells{}, Slotter: timeslot.MustNew(5 * time.Minute),
		Flight:   rec,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct cells and slots so nothing is served from cache.
			_, _ = eng.Do(context.Background(), traj.ODInput{
				Origin:    geo.Point{X: float64(i * 150), Y: 100},
				Dest:      geo.Point{X: 900, Y: float64(i * 120)},
				DepartSec: float64(600 + 3600*i),
			})
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let the queue fill behind the gated first request
	close(gate)
	wg.Wait()
	eng.Close()
	if fusedBatches.Load() == 0 {
		t.Fatal("no fused batches formed during the recording")
	}

	events := rec.Events(recorder.Filter{})
	if len(events) != n {
		t.Fatalf("recorded %d events, want %d", len(events), n)
	}
	rep, err := Run(context.Background(), Config{
		Snapshot: s, Match: match,
		Cells: cells{}, Slotter: timeslot.MustNew(5 * time.Minute),
	}, events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnexplainedDiffs != 0 || rep.Matched != n {
		t.Fatalf("report = %+v, want %d matched and 0 unexplained", rep, n)
	}
}
