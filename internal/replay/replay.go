// Package replay re-executes flight-recorder segments through a real
// inference engine and diffs the answers against what was served — the
// consumer side of the wide-event capture in internal/recorder.
//
// The determinism argument: an estimate is a pure function of (matched OD,
// external features, model weights). Replay pins all three — the same city
// graph rebuilds the same matcher, the external features come from the
// training-time prior (a deterministic function of the departure time),
// and the checkpoint fixes the weights — and runs the engine with a fixed
// single worker, batch size 1 and no live traffic source (the traffic
// epoch is therefore pinned at 0). Under those conditions, replaying a
// segment against the identical checkpoint must reproduce every recorded
// estimate bit-for-bit; any remaining difference is a real
// nondeterminism bug, and the report calls it unexplained.
//
// Differences that replay cannot reproduce by construction are explained
// and counted separately:
//
//   - the recording merged live traffic into the features (TrafficLive),
//     or served a cache entry computed under a live epoch — the offline
//     engine has no probe stream;
//   - the recording was served by a different checkpoint than the one
//     loaded for replay — that is the regression-diffing mode, and the
//     per-generation/per-cell tables quantify exactly how the answers
//     moved;
//   - the cache disposition diverged (a recorded hit missing in replay or
//     vice versa), which happens whenever the segment holds a sampled
//     subset of the original stream.
//
// Shed outcomes (queue full, queue timeout) and cancellations are serving
// artifacts of load, not of the model; replay skips them and says so.
package replay

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"deepod/internal/infer"
	"deepod/internal/obs"
	"deepod/internal/recorder"
	"deepod/internal/timeslot"
	"deepod/internal/traj"
)

// Config pins the replay environment.
type Config struct {
	// Snapshot is the checkpoint to replay against (required).
	Snapshot *infer.Snapshot
	// Match snaps OD inputs onto the road network (required) — build it
	// from the same city the recording served, or matching itself diverges.
	Match func(ctx context.Context, od traj.ODInput) (traj.MatchedOD, error)
	// External resolves the training-time prior features for a departure
	// (optional; the recording's serve path used the same function for
	// every estimate it answered without live traffic).
	External func(departSec float64) *traj.ExternalFeatures
	// CacheEntries sizes the replay engine's estimate cache (default
	// 8192; negative disables). With a complete (sample-rate-1) segment
	// the cache state rebuilds exactly, so recorded cache hits replay as
	// cache hits and are verified bit-for-bit too. With a sampled segment
	// dispositions diverge and those events are explained, not verified.
	CacheEntries int
	// Cells/Slotter quantize the cache keys (optional; pass the serving
	// engine's to reproduce its cache behavior).
	Cells   infer.Quantizer
	Slotter *timeslot.Slotter
	// ToleranceSec is the regression threshold: replayed answers that
	// moved more than this count as changed in the report (default 1s).
	// Independent of the bit-for-bit determinism check.
	ToleranceSec float64
	// Registry receives the replay engine's metrics (default: a private
	// registry, so replay never pollutes a live process's exposition).
	Registry *obs.Registry
}

// DiffStats aggregates estimate differences for one report bucket.
type DiffStats struct {
	// Events is how many served events landed in the bucket.
	Events int `json:"events"`
	// MAESec is the mean |replayed − recorded| in seconds.
	MAESec float64 `json:"mae_sec"`
	// MaxAbsSec is the worst single difference.
	MaxAbsSec float64 `json:"max_abs_sec"`
	// Changed counts answers that moved beyond the tolerance.
	Changed int `json:"changed"`

	sumAbs float64
}

func (d *DiffStats) add(diff, tol float64) {
	d.Events++
	a := math.Abs(diff)
	d.sumAbs += a
	if a > d.MaxAbsSec {
		d.MaxAbsSec = a
	}
	if a > tol {
		d.Changed++
	}
	d.MAESec = d.sumAbs / float64(d.Events)
}

// Report is the replay outcome — BENCH_replay.json's top-level shape.
type Report struct {
	// Snapshot is the checkpoint ID replayed against.
	Snapshot string `json:"snapshot"`
	// Events is the segment's event count; Replayed how many re-executed
	// (served + reproducible errors); Skipped the rest, by class.
	Events   int            `json:"events"`
	Replayed int            `json:"replayed"`
	Skipped  map[string]int `json:"skipped,omitempty"`

	// Matched counts bit-for-bit identical estimates. ExplainedDiffs had
	// a structural reason to differ (live traffic, checkpoint mismatch,
	// cache divergence), broken out in Explanations. UnexplainedDiffs is
	// the determinism gate: same checkpoint, pinned inputs, different
	// answer.
	Matched          int            `json:"matched"`
	ExplainedDiffs   int            `json:"explained_diffs"`
	UnexplainedDiffs int            `json:"unexplained_diffs"`
	Explanations     map[string]int `json:"explanations,omitempty"`

	// ErrorsReproduced / ErrorsChanged track recorded error outcomes
	// (invalid input, match failures) re-executed for the same class. A
	// changed error class against the same checkpoint is also unexplained.
	ErrorsReproduced int `json:"errors_reproduced"`
	ErrorsChanged    int `json:"errors_changed"`

	// Overall is the estimate diff over every replayed served event;
	// PerGeneration and PerOriginCell slice it by the recorded model
	// generation and origin grid cell.
	ToleranceSec  float64               `json:"tolerance_sec"`
	Overall       DiffStats             `json:"overall"`
	PerGeneration map[string]*DiffStats `json:"per_generation,omitempty"`
	PerOriginCell map[string]*DiffStats `json:"per_origin_cell,omitempty"`

	// ElapsedSec and EventsPerSec measure replay throughput.
	ElapsedSec   float64 `json:"elapsed_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// Run replays events (in capture order) against the configured snapshot.
func Run(ctx context.Context, cfg Config, events []recorder.Event) (*Report, error) {
	if cfg.Snapshot == nil || cfg.Match == nil {
		return nil, fmt.Errorf("replay: Config needs Snapshot and Match")
	}
	if cfg.ToleranceSec <= 0 {
		cfg.ToleranceSec = 1
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 8192
	}
	if cfg.CacheEntries < 0 {
		cfg.CacheEntries = 0
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	eng, err := infer.New(infer.Config{
		Match:    cfg.Match,
		Snapshot: cfg.Snapshot,
		// The determinism pins: one worker, one request per batch, no
		// traffic source (epoch 0 everywhere), generous queue timeout so
		// machine load can never masquerade as a shed.
		Workers:      1,
		MaxBatch:     1,
		QueueDepth:   1,
		QueueTimeout: time.Minute,
		CacheEntries: cfg.CacheEntries,
		Cells:        cfg.Cells,
		Slotter:      cfg.Slotter,
		Registry:     cfg.Registry,
	})
	if err != nil {
		return nil, fmt.Errorf("replay: engine: %w", err)
	}
	defer eng.Close()

	ordered := append([]recorder.Event(nil), events...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Seq < ordered[j].Seq })

	rep := &Report{
		Snapshot:      cfg.Snapshot.ID,
		Events:        len(ordered),
		Skipped:       map[string]int{},
		Explanations:  map[string]int{},
		ToleranceSec:  cfg.ToleranceSec,
		PerGeneration: map[string]*DiffStats{},
		PerOriginCell: map[string]*DiffStats{},
	}
	start := time.Now()
	for i := range ordered {
		ev := &ordered[i]
		switch ev.Err {
		case "overloaded", "queue_timeout", "canceled", "closed":
			// Load/lifecycle artifacts of the recording process, not
			// properties of the model; nothing to re-execute.
			rep.Skipped[ev.Err]++
			continue
		}
		od := traj.ODInput{Origin: ev.Origin, Dest: ev.Dest, DepartSec: ev.DepartSec}
		if cfg.External != nil {
			od.External = cfg.External(ev.DepartSec)
		}
		res, doErr := eng.Do(ctx, od)
		rep.Replayed++
		sameSnapshot := ev.Snapshot == "" || ev.Snapshot == cfg.Snapshot.ID

		if ev.Err != "" {
			class, _ := recorder.ClassifyError(doErr)
			if class == ev.Err {
				rep.ErrorsReproduced++
			} else {
				rep.ErrorsChanged++
				if sameSnapshot {
					rep.UnexplainedDiffs++
				} else {
					rep.ExplainedDiffs++
					rep.Explanations["snapshot"]++
				}
			}
			continue
		}
		if doErr != nil {
			// A served request now errors: an answer changed in kind.
			rep.ErrorsChanged++
			if sameSnapshot {
				rep.UnexplainedDiffs++
			} else {
				rep.ExplainedDiffs++
				rep.Explanations["snapshot"]++
			}
			continue
		}

		diff := res.Seconds - ev.EstimateSec
		rep.Overall.add(diff, cfg.ToleranceSec)
		genKey := fmt.Sprintf("%d", ev.Generation)
		if rep.PerGeneration[genKey] == nil {
			rep.PerGeneration[genKey] = &DiffStats{}
		}
		rep.PerGeneration[genKey].add(diff, cfg.ToleranceSec)
		cellKey := fmt.Sprintf("%d", ev.OriginCell)
		if rep.PerOriginCell[cellKey] == nil {
			rep.PerOriginCell[cellKey] = &DiffStats{}
		}
		rep.PerOriginCell[cellKey].add(diff, cfg.ToleranceSec)

		switch {
		case math.Float64bits(res.Seconds) == math.Float64bits(ev.EstimateSec):
			rep.Matched++
		case ev.TrafficLive:
			rep.ExplainedDiffs++
			rep.Explanations["traffic_live"]++
		case ev.Cached && ev.TrafficEpoch != 0:
			rep.ExplainedDiffs++
			rep.Explanations["cached_live_epoch"]++
		case !sameSnapshot:
			rep.ExplainedDiffs++
			rep.Explanations["snapshot"]++
		case ev.Cached != res.Cached:
			// A sampled segment rebuilds a different cache state; the
			// recorded answer and the replayed one are estimates of the
			// same cell key from different exact coordinates.
			rep.ExplainedDiffs++
			rep.Explanations["cache_divergence"]++
		default:
			rep.UnexplainedDiffs++
		}
	}
	rep.ElapsedSec = time.Since(start).Seconds()
	if rep.ElapsedSec > 0 {
		rep.EventsPerSec = float64(rep.Replayed) / rep.ElapsedSec
	}
	return rep, nil
}
