// Package prof captures anomaly-triggered runtime profiles.
//
// Production incidents are easiest to diagnose with a profile taken while
// the anomaly is happening, not after. The Profiler subscribes (via the
// caller) to alert transitions and, when an alert fires, records a
// CPU/heap/goroutine profile bundle tagged with the triggering alert. A
// cooldown and a single-inflight guard bound the cost: profiling under
// overload must never add to the overload. Captures live in a bounded ring
// — in memory, and mirrored to disk when a directory is configured — and
// are listed and downloaded over GET /debug/profiles.
package prof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"deepod/internal/obs"
)

// Kinds are the profile kinds each capture records, in capture order.
var Kinds = []string{"cpu", "heap", "goroutine"}

// Config assembles a Profiler; every field defaults.
type Config struct {
	// Dir, when set, mirrors each capture's profiles to
	// <Dir>/<id>.<kind>.pprof; evicted captures delete their files.
	Dir string
	// MaxCaptures bounds the capture ring (default 16).
	MaxCaptures int
	// CPUDuration is how long the CPU profile runs (default 1s). Heap and
	// goroutine profiles are instantaneous snapshots taken after it.
	CPUDuration time.Duration
	// Cooldown is the minimum gap between capture starts (default 1m).
	// Triggers inside the window are counted and dropped, not queued:
	// a storm of alerts yields one bundle, which is the useful one.
	Cooldown time.Duration
	// Registry receives tte_prof_* metrics (default obs.Default()).
	Registry *obs.Registry
	// Logger receives one line per capture (nil logs nowhere).
	Logger *slog.Logger
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
}

// Capture is one recorded profile bundle.
type Capture struct {
	ID string `json:"id"`
	// Trigger names what started the capture ("alert:slo:...", "manual").
	Trigger string            `json:"trigger"`
	Labels  map[string]string `json:"labels,omitempty"`
	At      time.Time         `json:"at"`
	// Sizes maps profile kind to its byte size.
	Sizes map[string]int `json:"sizes"`
	// Files maps profile kind to its on-disk path when Dir is configured.
	Files map[string]string `json:"files,omitempty"`
	Err   string            `json:"err,omitempty"`

	data map[string][]byte
}

// Profiler records rate-limited profile bundles into a bounded ring.
// Construct with New; Close waits for an in-flight capture to finish.
type Profiler struct {
	cfg Config
	now func() time.Time

	mu        sync.Mutex
	ring      []*Capture
	seq       uint64
	lastStart time.Time
	inflight  bool
	wg        sync.WaitGroup

	captures *obs.Counter
	skipCool *obs.Counter
	skipBusy *obs.Counter
}

// New builds a Profiler. When cfg.Dir is set it is created eagerly so a
// bad path fails at startup, not at the first incident.
func New(cfg Config) (*Profiler, error) {
	if cfg.MaxCaptures <= 0 {
		cfg.MaxCaptures = 16
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("prof: create dir: %w", err)
		}
	}
	reg := cfg.Registry
	reg.Help("tte_prof_captures_total", "Profile bundles captured.")
	reg.Help("tte_prof_skipped_total", "Profile triggers dropped, by reason.")
	return &Profiler{
		cfg:      cfg,
		now:      cfg.Now,
		captures: reg.Counter("tte_prof_captures_total"),
		skipCool: reg.Counter("tte_prof_skipped_total", "reason", "cooldown"),
		skipBusy: reg.Counter("tte_prof_skipped_total", "reason", "inflight"),
	}, nil
}

// TriggerAsync starts a capture in the background if neither the cooldown
// nor an in-flight capture blocks it. It returns immediately with whether
// a capture was started — alert subscribers must not block on profiling.
func (p *Profiler) TriggerAsync(trigger string, labels map[string]string) bool {
	now := p.now()
	p.mu.Lock()
	if p.inflight {
		p.mu.Unlock()
		p.skipBusy.Inc()
		return false
	}
	if !p.lastStart.IsZero() && now.Sub(p.lastStart) < p.cfg.Cooldown {
		p.mu.Unlock()
		p.skipCool.Inc()
		return false
	}
	p.inflight = true
	p.lastStart = now
	p.wg.Add(1)
	p.mu.Unlock()

	go func() {
		defer p.wg.Done()
		p.capture(trigger, labels, now)
		p.mu.Lock()
		p.inflight = false
		p.mu.Unlock()
	}()
	return true
}

// Capture records a bundle synchronously, bypassing cooldown and inflight
// guards (on-demand use; tests). It still advances the cooldown clock so a
// manual capture delays the next automatic one.
func (p *Profiler) Capture(trigger string, labels map[string]string) *Capture {
	now := p.now()
	p.mu.Lock()
	p.lastStart = now
	p.mu.Unlock()
	return p.capture(trigger, labels, now)
}

func (p *Profiler) capture(trigger string, labels map[string]string, at time.Time) *Capture {
	p.mu.Lock()
	p.seq++
	id := fmt.Sprintf("p%06d", p.seq)
	p.mu.Unlock()

	c := &Capture{
		ID:      id,
		Trigger: trigger,
		Labels:  labels,
		At:      at,
		Sizes:   map[string]int{},
		data:    map[string][]byte{},
	}

	var errs []string
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		// Another CPU profile is already running (e.g. net/http/pprof);
		// keep the bundle useful with the snapshot kinds.
		errs = append(errs, "cpu: "+err.Error())
	} else {
		time.Sleep(p.cfg.CPUDuration)
		pprof.StopCPUProfile()
		c.data["cpu"] = cpu.Bytes()
	}
	for _, kind := range []string{"heap", "goroutine"} {
		var buf bytes.Buffer
		if prof := pprof.Lookup(kind); prof != nil {
			if err := prof.WriteTo(&buf, 0); err != nil {
				errs = append(errs, kind+": "+err.Error())
				continue
			}
			c.data[kind] = buf.Bytes()
		}
	}
	for kind, b := range c.data {
		c.Sizes[kind] = len(b)
	}
	if p.cfg.Dir != "" {
		c.Files = map[string]string{}
		for kind, b := range c.data {
			path := filepath.Join(p.cfg.Dir, fmt.Sprintf("%s.%s.pprof", c.ID, kind))
			if err := os.WriteFile(path, b, 0o644); err != nil {
				errs = append(errs, "write "+kind+": "+err.Error())
				continue
			}
			c.Files[kind] = path
		}
	}
	c.Err = strings.Join(errs, "; ")

	p.mu.Lock()
	p.ring = append(p.ring, c)
	var evicted *Capture
	if len(p.ring) > p.cfg.MaxCaptures {
		evicted = p.ring[0]
		p.ring = p.ring[1:]
	}
	p.mu.Unlock()
	if evicted != nil {
		for _, path := range evicted.Files {
			_ = os.Remove(path)
		}
	}

	p.captures.Inc()
	if p.cfg.Logger != nil {
		p.cfg.Logger.Info("profile captured",
			"id", c.ID, "trigger", trigger, "kinds", len(c.data), "err", c.Err)
	}
	return c
}

// List returns retained captures, newest first, without profile bytes.
func (p *Profiler) List() []Capture {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Capture, 0, len(p.ring))
	for i := len(p.ring) - 1; i >= 0; i-- {
		c := *p.ring[i]
		c.data = nil
		out = append(out, c)
	}
	return out
}

// Get returns one kind's profile bytes from a retained capture.
func (p *Profiler) Get(id, kind string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.ring {
		if c.ID == id {
			b, ok := c.data[kind]
			return b, ok
		}
	}
	return nil, false
}

// Close waits for an in-flight capture to finish. Retained captures stay
// readable.
func (p *Profiler) Close() {
	p.wg.Wait()
}

// profilesPayload is the GET /debug/profiles body.
type profilesPayload struct {
	Captures []Capture `json:"captures"`
	// Kinds lists the downloadable kinds: /debug/profiles/<id>/<kind>.
	Kinds []string `json:"kinds"`
}

// Handler serves the capture list at its mount point and raw pprof
// downloads at <mount>/<id>/<kind>. POST to <mount>/capture records an
// on-demand bundle (subject to cooldown, like an alert trigger).
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/profiles"), "/")
		switch {
		case rest == "":
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", "GET, HEAD")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if r.Method == http.MethodHead {
				return
			}
			kinds := append([]string(nil), Kinds...)
			sort.Strings(kinds)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(profilesPayload{Captures: p.List(), Kinds: kinds})
		case rest == "capture":
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", "POST")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			started := p.TriggerAsync("manual", map[string]string{"remote": r.RemoteAddr})
			w.Header().Set("Content-Type", "application/json")
			if !started {
				w.WriteHeader(http.StatusTooManyRequests)
			}
			fmt.Fprintf(w, "{\"started\": %v}\n", started)
		default:
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", "GET")
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			id, kind, ok := strings.Cut(rest, "/")
			if !ok {
				http.Error(w, "want /debug/profiles/<id>/<kind>", http.StatusBadRequest)
				return
			}
			b, found := p.Get(id, kind)
			if !found {
				http.Error(w, "no such profile", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%s.%s.pprof", id, kind))
			_, _ = w.Write(b)
		}
	})
}
