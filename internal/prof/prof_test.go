package prof

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"deepod/internal/obs"
)

type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestProfiler(t *testing.T, cfg Config) (*Profiler, *manualClock) {
	t.Helper()
	clock := newManualClock()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.CPUDuration == 0 {
		cfg.CPUDuration = 5 * time.Millisecond
	}
	cfg.Now = clock.now
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(p.Close)
	return p, clock
}

func TestCaptureProducesAllKinds(t *testing.T) {
	dir := t.TempDir()
	p, _ := newTestProfiler(t, Config{Dir: dir})
	c := p.Capture("manual", map[string]string{"why": "test"})
	if c.Err != "" {
		t.Fatalf("capture error: %s", c.Err)
	}
	for _, kind := range Kinds {
		if c.Sizes[kind] == 0 {
			t.Errorf("kind %s empty", kind)
		}
		path := c.Files[kind]
		if path == "" {
			t.Errorf("kind %s has no file", kind)
			continue
		}
		fi, err := os.Stat(path)
		if err != nil || fi.Size() == 0 {
			t.Errorf("kind %s file %s: err=%v", kind, path, err)
		}
	}
	if c.Trigger != "manual" || c.Labels["why"] != "test" {
		t.Fatalf("capture tagging wrong: %+v", c)
	}
}

func TestTriggerAsyncCooldown(t *testing.T) {
	p, clock := newTestProfiler(t, Config{Cooldown: time.Minute})
	if !p.TriggerAsync("alert:x", nil) {
		t.Fatal("first trigger refused")
	}
	p.Close() // wait for the capture so inflight is clear
	if p.TriggerAsync("alert:x", nil) {
		t.Fatal("trigger inside cooldown accepted")
	}
	clock.advance(2 * time.Minute)
	if !p.TriggerAsync("alert:x", nil) {
		t.Fatal("trigger after cooldown refused")
	}
	p.Close()
	if got := len(p.List()); got != 2 {
		t.Fatalf("captures = %d, want 2", got)
	}
}

func TestRingEvictionDeletesFiles(t *testing.T) {
	dir := t.TempDir()
	p, _ := newTestProfiler(t, Config{Dir: dir, MaxCaptures: 2})
	first := p.Capture("manual", nil)
	p.Capture("manual", nil)
	p.Capture("manual", nil) // evicts first
	list := p.List()
	if len(list) != 2 {
		t.Fatalf("ring holds %d, want 2", len(list))
	}
	for _, c := range list {
		if c.ID == first.ID {
			t.Fatal("evicted capture still listed")
		}
	}
	for _, path := range first.Files {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("evicted file %s still on disk (err=%v)", path, err)
		}
	}
	// Survivors keep their files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2*len(Kinds) {
		t.Fatalf("dir holds %d files, want %d", len(entries), 2*len(Kinds))
	}
}

func TestHandler(t *testing.T) {
	p, clock := newTestProfiler(t, Config{})
	c := p.Capture("manual", nil)
	h := p.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rr.Code != 200 {
		t.Fatalf("list = %d", rr.Code)
	}
	var body struct {
		Captures []Capture `json:"captures"`
		Kinds    []string  `json:"kinds"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(body.Captures) != 1 || body.Captures[0].ID != c.ID || len(body.Kinds) != 3 {
		t.Fatalf("payload = %+v", body)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profiles/"+c.ID+"/heap", nil))
	if rr.Code != 200 || rr.Body.Len() == 0 {
		t.Fatalf("download = %d len=%d", rr.Code, rr.Body.Len())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("download content-type = %q", ct)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profiles/nope/heap", nil))
	if rr.Code != 404 {
		t.Fatalf("missing profile = %d, want 404", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/profiles/justid", nil))
	if rr.Code != 400 {
		t.Fatalf("malformed path = %d, want 400", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("DELETE", "/debug/profiles", nil))
	if rr.Code != 405 {
		t.Fatalf("DELETE list = %d, want 405", rr.Code)
	}

	// On-demand capture endpoint (past the cooldown the manual capture
	// started).
	clock.advance(2 * time.Minute)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/debug/profiles/capture", nil))
	if rr.Code != 200 {
		t.Fatalf("POST capture = %d", rr.Code)
	}
	p.Close()
	if got := len(p.List()); got != 2 {
		t.Fatalf("captures after POST = %d, want 2", got)
	}
}

func TestBadDirFailsAtNew(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: filepath.Join(file, "sub"), Registry: obs.NewRegistry()}); err == nil {
		t.Fatal("dir under a regular file accepted")
	}
}
