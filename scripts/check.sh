#!/bin/sh
# check.sh — the PR gate: build, vet, formatting, the full test suite, and
# a race-detector pass over the concurrent packages (the obs registry and
# the serving layer are exercised under -race on every run).
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go test"
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/obs/... ./internal/serve/... ./internal/metrics/... ./internal/infer/... ./internal/mapmatch/... ./internal/quality/... ./internal/slo/... ./internal/prof/... ./internal/traffic/... ./internal/recorder/... ./internal/replay/... ./internal/telemetry/...
go test -race -run 'ConcurrentSafe|Trace|Parallel' ./internal/core/
go test -race -run 'Parallel' ./internal/embed/

echo "== tracebench gate (disabled-tracing span overhead)"
go test -run 'TestUntracedSpanOverhead' ./internal/obs/

echo "== quality gate (disabled quality-monitor stamp overhead)"
go test -run 'TestPredictionStampDisabledOverhead' ./internal/infer/

echo "== slo gate (per-request SLO accounting overhead)"
go test -run 'TestSLORequestAccountingOverhead' ./internal/infer/

echo "== traffic gate (disabled live-traffic overhead on the serve path)"
go test -run 'TestTrafficDisabledOverhead' ./internal/infer/

echo "== flight-recorder gate (disabled wide-event capture overhead)"
go test -run 'TestFlightDisabledOverhead' ./internal/infer/

echo "== telemetry gate (disabled exemplar-path histogram overhead)"
go test -run 'TestTelemetryDisabledOverhead' ./internal/obs/

echo "== bench smoke (internal/infer + internal/obs spans)"
go test -run '^$' -bench=. -benchtime=200ms ./internal/infer/
go test -run '^$' -bench 'BenchmarkSpan|BenchmarkTraceStoreOffer' -benchtime=100ms ./internal/obs/

echo "== servebench batch sweep (uncached QPS vs MaxBatch, fused vs matvec; gate CPU-aware)"
go run ./cmd/ttebench -servebench -servebench-batch-only -servebench-duration 1s \
    -servebench-conc 16 -servebench-orders 200 -servebench-ods 100 \
    -servebench-out BENCH_serve_sweep.json -servebench-fused-gate 1.02

echo "== trainbench smoke (data-parallel training throughput; gate CPU-aware)"
go run ./cmd/ttebench -trainbench -trainbench-orders 200 -trainbench-steps 10 \
    -trainbench-workers 1,2,4 -trainbench-gate 2

echo "== ingestbench smoke (probe firehose throughput + read degradation; gates CPU-aware)"
go run ./cmd/ttebench -ingestbench -ingestbench-duration 2s -ingestbench-orders 200 \
    -ingestbench-vehicles 150 -ingestbench-gate-probes 50000 -ingestbench-gate-degrade 0.2

echo "== replay smoke (record a serve session, replay against the same checkpoint: zero unexplained diffs)"
go run ./cmd/ttereplay -smoke -smoke-orders 200 -smoke-requests 48 \
    -gate-unexplained 0 -out BENCH_replay.json

echo "ok"
