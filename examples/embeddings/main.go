// Embeddings: look inside the two embedding matrices DeepOD learns. The
// example pre-trains and fine-tunes a model, then (a) prints an hour×day
// sketch of the 1-D t-SNE projection of the time-slot embeddings — the
// paper's Figure 14b heatmap, which visualizes daily and weekly periodicity
// — and (b) runs nearest-neighbor queries on the road-segment embeddings to
// show that adjacent road segments land close in the latent space.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"deepod"
	"deepod/internal/tsne"
)

func main() {
	log.SetFlags(0)

	city, err := deepod.BuildCity("chengdu-s", deepod.CityOptions{Orders: 1200, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	model, err := deepod.Train(deepod.SmallConfig(), city, nil)
	if err != nil {
		log.Fatal(err)
	}

	// --- Figure 14b-style heatmap of the time-slot embeddings ---
	slotEmb := model.SlotEmbeddingTable()
	slotter := model.Slotter()
	vecs := make([][]float64, slotEmb.V)
	for i := 0; i < slotEmb.V; i++ {
		vecs[i] = slotEmb.W.Value.Row(i).Data
	}
	proj, err := tsne.Embed(vecs, tsne.DefaultConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	perHour := slotter.SlotsPerDay / 24
	if perHour < 1 {
		perHour = 1
	}
	var heat [7][24]float64
	var counts [7][24]int
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range proj {
		d := slotter.DayOfWeek(i) % 7
		h := slotter.SlotOfDay(i) / perHour
		if h > 23 {
			h = 23
		}
		heat[d][h] += proj[i][0]
		counts[d][h]++
	}
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			if counts[d][h] > 0 {
				heat[d][h] /= float64(counts[d][h])
			}
			lo = math.Min(lo, heat[d][h])
			hi = math.Max(hi, heat[d][h])
		}
	}
	shades := []byte(" .:-=+*#%@")
	fmt.Println("time-slot embeddings, 1-D t-SNE (rows = days, cols = hours):")
	fmt.Println("     0         6         12        18       23")
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	for d := 0; d < 7; d++ {
		row := make([]byte, 24)
		for h := 0; h < 24; h++ {
			level := 0
			if hi > lo {
				level = int((heat[d][h] - lo) / (hi - lo) * float64(len(shades)-1))
			}
			row[h] = shades[level]
		}
		fmt.Printf("%s  %s\n", days[d], string(row))
	}
	fmt.Println("(similar columns across rows = daily periodicity; the weekend rows differ)")

	// --- Nearest neighbors in the road-segment embedding space ---
	roadEmb := model.RoadEmbeddingTable()
	g := city.Graph
	query := 0
	type scored struct {
		edge int
		dist float64
	}
	qv := roadEmb.W.Value.Row(query)
	var all []scored
	for e := 0; e < roadEmb.V; e++ {
		if e == query {
			continue
		}
		ev := roadEmb.W.Value.Row(e)
		var d float64
		for k := range qv.Data {
			diff := qv.Data[k] - ev.Data[k]
			d += diff * diff
		}
		all = append(all, scored{edge: e, dist: math.Sqrt(d)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].dist < all[j].dist })
	qe := g.Edges[query]
	fmt.Printf("\nnearest neighbors of road segment %d (%v→%v, %s):\n",
		query, qe.From, qe.To, qe.Class)
	for _, s := range all[:5] {
		e := g.Edges[s.edge]
		fmt.Printf("  segment %4d (%3v→%3v, %-8s)  latent distance %.3f\n",
			s.edge, e.From, e.To, e.Class, s.dist)
	}
	fmt.Println("(graph-adjacent segments should dominate this list)")
}
