// Quickstart: synthesize a small city, train DeepOD, evaluate it against a
// baseline, and estimate one trip — the minimal end-to-end tour of the
// public API.
package main

import (
	"fmt"
	"log"
	"time"

	"deepod"
)

func main() {
	log.SetFlags(0)

	// 1. Build a synthetic city with taxi orders (the stand-in for the
	//    paper's ride-hailing datasets). Same options → same city.
	city, err := deepod.BuildCity("chengdu-s", deepod.CityOptions{
		Orders:      1500,
		HorizonDays: 28,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city %s: %d road segments, %d orders (train/valid/test = %d/%d/%d)\n",
		city.Name, city.Graph.NumEdges(), len(city.Records),
		len(city.Split.Train), len(city.Split.Valid), len(city.Split.Test))

	// 2. Train DeepOD. SmallConfig is the laptop-scale configuration; use
	//    PaperConfig for the paper's §6.2 sizes.
	cfg := deepod.SmallConfig()
	start := time.Now()
	model, stats, err := deepod.TrainWithStats(cfg, city, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DeepOD trained: %d steps in %v (validation MAE %.1fs)\n",
		stats.Steps, time.Since(start).Round(time.Millisecond), stats.FinalValMAE)

	// 3. Evaluate on the held-out test trips, next to a classical baseline.
	mae, mape, mare := deepod.Evaluate(estimator{model}, city.Split.Test)
	fmt.Printf("DeepOD  test: MAE=%.1fs MAPE=%.1f%% MARE=%.1f%%\n", mae, mape*100, mare*100)

	gbm, err := deepod.Baseline("GBM", city.Graph)
	if err != nil {
		log.Fatal(err)
	}
	if err := gbm.Train(city.Split.Train, city.Split.Valid); err != nil {
		log.Fatal(err)
	}
	bmae, bmape, bmare := deepod.Evaluate(gbm, city.Split.Test)
	fmt.Printf("GBM     test: MAE=%.1fs MAPE=%.1f%% MARE=%.1f%%\n", bmae, bmape*100, bmare*100)

	// 4. Estimate a single future trip: match raw coordinates to the road
	//    network, then ask the model.
	matcher, err := deepod.NewMatcher(city.Graph)
	if err != nil {
		log.Fatal(err)
	}
	trip := deepod.ODInput{
		Origin:    deepod.Point{X: 400, Y: 300},
		Dest:      deepod.Point{X: 1900, Y: 2100},
		DepartSec: 8.5 * 3600, // 08:30 on day 0
	}
	trip.External = city.Grid.External(trip.DepartSec)
	matched, err := deepod.MatchOD(matcher, trip)
	if err != nil {
		log.Fatal(err)
	}
	eta := model.Estimate(&matched)
	fmt.Printf("trip (%.0f,%.0f)→(%.0f,%.0f) departing 08:30: estimated %s\n",
		trip.Origin.X, trip.Origin.Y, trip.Dest.X, trip.Dest.Y,
		time.Duration(eta*float64(time.Second)).Round(time.Second))
}

// estimator adapts *deepod.Model to the Estimator interface.
type estimator struct{ m *deepod.Model }

func (e estimator) Name() string                          { return "DeepOD" }
func (e estimator) Estimate(od *deepod.MatchedOD) float64 { return e.m.Estimate(od) }
