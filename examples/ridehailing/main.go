// Ridehailing: the scenario that motivates the paper — a ride-hailing
// platform answering ETA queries online. The example trains DeepOD, exposes
// it over HTTP (the same endpoint cmd/tteserve serves), and plays a morning
// of pickup requests against it, comparing the answers with the simulator's
// ground truth.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"deepod"
)

type estimateRequest struct {
	Origin    deepod.Point `json:"origin"`
	Dest      deepod.Point `json:"dest"`
	DepartSec float64      `json:"depart_sec"`
}

type estimateResponse struct {
	TravelSeconds float64 `json:"travel_seconds"`
}

func main() {
	log.SetFlags(0)

	city, err := deepod.BuildCity("xian-s", deepod.CityOptions{Orders: 1200, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	model, err := deepod.Train(deepod.SmallConfig(), city, nil)
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := deepod.NewMatcher(city.Graph)
	if err != nil {
		log.Fatal(err)
	}

	// Serve /estimate on a loopback port.
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", func(w http.ResponseWriter, r *http.Request) {
		var req estimateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		od := deepod.ODInput{
			Origin: req.Origin, Dest: req.Dest, DepartSec: req.DepartSec,
			External: city.Grid.External(req.DepartSec),
		}
		matched, err := deepod.MatchOD(matcher, od)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		json.NewEncoder(w).Encode(estimateResponse{TravelSeconds: model.Estimate(&matched)})
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("ETA service for %s listening on %s\n", city.Name, base)

	// Replay ten held-out test trips as live requests.
	rng := rand.New(rand.NewSource(9))
	var sumAbs, sumAct float64
	for i := 0; i < 10; i++ {
		rec := &city.Split.Test[rng.Intn(len(city.Split.Test))]
		body, _ := json.Marshal(estimateRequest{
			Origin: rec.OD.Origin, Dest: rec.OD.Dest, DepartSec: rec.OD.DepartSec,
		})
		resp, err := http.Post(base+"/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var er estimateResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("  request %2d: predicted %7s   actual %7s\n", i+1,
			time.Duration(er.TravelSeconds*float64(time.Second)).Round(time.Second),
			time.Duration(rec.TravelSec*float64(time.Second)).Round(time.Second))
		diff := er.TravelSeconds - rec.TravelSec
		if diff < 0 {
			diff = -diff
		}
		sumAbs += diff
		sumAct += rec.TravelSec
	}
	fmt.Printf("sampled MARE over 10 requests: %.1f%%\n", sumAbs/sumAct*100)
}
