// Ablation: reproduce the spirit of the paper's Table 4 ablation study on
// one small city — train DeepOD and each of its four ablations (N-st, N-sp,
// N-tp, N-other) and print their test errors side by side.
package main

import (
	"fmt"
	"log"

	"deepod"
)

func main() {
	log.SetFlags(0)

	city, err := deepod.BuildCity("chengdu-s", deepod.CityOptions{Orders: 1500, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ablation study on %s (%d training trips)\n\n", city.Name, len(city.Split.Train))
	fmt.Printf("%-10s %10s %10s %10s   %s\n", "variant", "MAE(s)", "MAPE(%)", "MARE(%)", "removed component")

	type variant struct {
		name    string
		removed string
		mod     func(*deepod.Config)
	}
	variants := []variant{
		{"DeepOD", "(full model)", nil},
		{"N-st", "trajectory encoding", func(c *deepod.Config) { c.NoTrajectory = true }},
		{"N-sp", "road-segment embeddings", func(c *deepod.Config) { c.NoSpatial = true }},
		{"N-tp", "time-interval encoding", func(c *deepod.Config) { c.NoTemporal = true }},
		{"N-other", "external features", func(c *deepod.Config) { c.NoExternal = true }},
	}
	for _, v := range variants {
		cfg := deepod.SmallConfig()
		if v.mod != nil {
			v.mod(&cfg)
		}
		model, err := deepod.Train(cfg, city, nil)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		mae, mape, mare := deepod.Evaluate(adapter{model}, city.Split.Test)
		fmt.Printf("%-10s %10.1f %10.1f %10.1f   %s\n", v.name, mae, mape*100, mare*100, v.removed)
	}
	fmt.Println("\nRemoving the road-segment embeddings (N-sp) hurts most at this scale,")
	fmt.Println("followed by the external features; the trajectory binding (N-st) needs")
	fmt.Println("the paper's data volume to separate (see EXPERIMENTS.md). Run")
	fmt.Println("`go run ./cmd/ttebench -scale small -exp table4` for the full harness.")
}

type adapter struct{ m *deepod.Model }

func (a adapter) Name() string                          { return "DeepOD" }
func (a adapter) Estimate(od *deepod.MatchedOD) float64 { return a.m.Estimate(od) }
